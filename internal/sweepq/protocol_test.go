package sweepq

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"offchip/internal/obs"
	"offchip/internal/runner"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := jobFrame{ID: "j1:app=apsi", Attempt: 3, CacheDir: "/tmp/x"}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out jobFrame
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the frame: %+v != %+v", out, in)
	}
	// The stream is now empty: the next read is a clean EOF.
	if err := ReadFrame(&buf, &out); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameTruncations(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, jobFrame{ID: "j1:app=apsi"}); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		var v jobFrame
		err := ReadFrame(bytes.NewReader(whole[:cut]), &v)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes read successfully", cut, len(whole))
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d reported as clean EOF", cut, len(whole))
		}
	}
}

func TestReadFrameRejectsOversizeLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	var v jobFrame
	err := ReadFrame(bytes.NewReader(hdr[:]), &v)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize length not rejected: %v", err)
	}
}

func TestReadFrameRejectsGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("not{")
	var v jobFrame
	if err := ReadFrame(&buf, &v); err == nil {
		t.Fatal("garbage JSON payload accepted")
	}
}

// TestJobResultRoundTrip is the wire-form contract the whole service rests
// on: ResultOf → JSON → Outcome reproduces the deterministic projection
// byte-for-byte and merges identically to the in-process outcome.
func TestJobResultRoundTrip(t *testing.T) {
	for _, spec := range []runner.JobSpec{
		{App: "apsi", Cap: 60},
		{Mode: runner.ModeBaseline, App: "swim", Interleave: "page", Cap: 60},
		{Mode: runner.ModeAnalyze, App: "fma3d"},
	} {
		out := spec.Execute()
		if out.Err != nil {
			t.Fatalf("%s: %v", out.ID, out.Err)
		}
		jr := ResultOf(out)
		wire, err := json.Marshal(jr)
		if err != nil {
			t.Fatal(err)
		}
		var jr2 JobResult
		if err := json.Unmarshal(wire, &jr2); err != nil {
			t.Fatal(err)
		}
		rebuilt := jr2.Outcome()
		if rebuilt.Err != nil {
			t.Fatalf("%s: rebuilt outcome failed: %v", out.ID, rebuilt.Err)
		}
		want, err := out.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rebuilt.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: canonical projection changed over the wire:\n got %s\nwant %s", out.ID, got, want)
		}
		// Merging the wire form must equal merging the in-process outcome.
		direct := obs.NewRegistry()
		for _, run := range sortedRuns(out) {
			direct.MergeScoped(out.Observers[run].Reg, out.ExecTimes[run], "job="+out.ShortID, "run="+run)
		}
		viaWire := obs.NewRegistry()
		jr2.MergeInto(viaWire)
		if !reflect.DeepEqual(direct.Snapshot(0), viaWire.Snapshot(0)) {
			t.Fatalf("%s: merged registries differ between direct and wire paths", out.ID)
		}
	}
}

func sortedRuns(o *runner.JobOutcome) []string {
	var runs []string
	for run := range o.Observers {
		if o.Observers[run] != nil && o.Observers[run].Reg != nil {
			runs = append(runs, run)
		}
	}
	// Small fixed set; insertion sort keeps the helper dependency-free.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j] < runs[j-1]; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	return runs
}

// TestJobResultErrorPropagates: a failed job travels as an error-carrying
// result and rebuilds into a failed outcome, never a zero-metric success.
func TestJobResultErrorPropagates(t *testing.T) {
	out := runner.JobSpec{App: "apsi", L2: "bogus"}.Execute()
	if out.Err == nil {
		t.Fatal("expected a failing job")
	}
	jr := ResultOf(out)
	if jr.Err == "" {
		t.Fatal("job error lost in ResultOf")
	}
	if rebuilt := jr.Outcome(); rebuilt.Err == nil {
		t.Fatal("job error lost in Outcome")
	}
}
