package sweepq

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"offchip/internal/experiments"
	"offchip/internal/obs"
	"offchip/internal/prof"
	"offchip/internal/runner"
	"offchip/internal/tracecache"
)

// Config tunes a sweep server.
type Config struct {
	// StateDir holds the journal, the result blobs, and the shared trace
	// cache. Required: resume is the point of the service.
	StateDir string
	// Addr is the HTTP listen address ("127.0.0.1:0" for tests).
	Addr string
	// Workers is the worker-process count (0 or negative: 1).
	Workers int
	// JobTimeout bounds one job attempt on a worker (0: unbounded).
	JobTimeout time.Duration
	// MaxRetries is how many times a transport failure (worker crash,
	// timeout) requeues a job before it is marked failed. Deterministic
	// job errors never retry — the same ID would fail the same way.
	MaxRetries int
	// RetryBackoff delays each requeue (scaled by the attempt number).
	RetryBackoff time.Duration
	// WorkerCommand overrides how worker processes are spawned (nil:
	// re-exec the current binary with WorkerEnv set).
	WorkerCommand func() *exec.Cmd
	// Stderr receives worker stderr (nil: inherit).
	Stderr io.Writer

	// testJobDelay stretches each dispatch so the crash test can reliably
	// kill the fleet with a sweep half done. Test-only.
	testJobDelay time.Duration
}

// taskState is a job's position in the queue lifecycle.
type taskState string

const (
	taskQueued  taskState = "queued"
	taskRunning taskState = "running"
	taskDone    taskState = "done"
	taskFailed  taskState = "failed"
)

// task is one submitted job's full server-side record.
type task struct {
	id       string
	shortID  string
	priority int
	seq      int64 // submission order; ties break FIFO
	state    taskState
	attempt  int // current attempt tag (increments on requeue)
	retries  int
	errMsg   string
	result   *JobResult // set when done (or failed deterministically)
	journal  bool       // satisfied from the checkpoint journal
}

// taskHeap orders queued tasks by (priority desc, seq asc).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Stats is the server's cumulative counter block (the /state payload).
type Stats struct {
	Submitted        int64 `json:"submitted"`         // IDs received by Submit
	Accepted         int64 `json:"accepted"`          // newly enqueued
	Coalesced        int64 `json:"coalesced"`         // already queued/running
	CacheHits        int64 `json:"cache_hits"`        // already done in this process
	JournalHits      int64 `json:"journal_hits"`      // satisfied from the on-disk journal
	DuplicateResults int64 `json:"duplicate_results"` // completions for already-done tasks
	Retries          int64 `json:"retries"`           // transport-failure requeues
	Queued           int   `json:"queued"`
	Running          int   `json:"running"`
	Done             int   `json:"done"`
	Failed           int   `json:"failed"`

	Fleet FleetStats `json:"fleet"`
}

// Server is the sweep service: a priority queue of canonical job IDs, a
// worker-process fleet executing them, a checkpoint journal making every
// completion durable, and the live HTTP plane.
type Server struct {
	cfg     Config
	fleet   *Fleet
	journal *Journal
	store   *tracecache.Store
	http    *prof.Server

	mu      sync.Mutex
	cond    *sync.Cond
	tasks   map[string]*task
	queue   taskHeap
	merged  *obs.Registry
	nextSeq int64
	stats   Stats
	closed  bool

	wg sync.WaitGroup
}

// NewServer opens the state directory (recovering the journal), spawns the
// worker fleet, binds the HTTP plane, and starts the dispatchers.
func NewServer(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("sweepq: Config.StateDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	store, err := tracecache.NewStore(filepath.Join(cfg.StateDir, "results"))
	if err != nil {
		return nil, err
	}
	journal, err := OpenJournal(filepath.Join(cfg.StateDir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	fleet, err := NewFleet(FleetConfig{
		Workers:    cfg.Workers,
		CacheDir:   filepath.Join(cfg.StateDir, "traces"),
		JobTimeout: cfg.JobTimeout,
		Command:    cfg.WorkerCommand,
		Stderr:     cfg.Stderr,
	})
	if err != nil {
		journal.Close()
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		fleet:   fleet,
		journal: journal,
		store:   store,
		tasks:   map[string]*task{},
		merged:  obs.NewRegistry(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.http, err = prof.NewServer(prof.ServerConfig{
		Addr: cfg.Addr,
		Registries: func() map[string]*obs.Registry {
			return map[string]*obs.Registry{"sweep": s.merged}
		},
		Progress: s.progress,
		Extra: map[string]http.HandlerFunc{
			"/submit": s.handleSubmit,
			"/jobs/":  s.handleJob,
			"/state":  s.handleState,
		},
	})
	if err != nil {
		fleet.Close()
		journal.Close()
		return nil, err
	}
	s.http.Start()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// Addr returns the HTTP plane's bound address.
func (s *Server) Addr() string { return s.http.Addr() }

// SubmitResult reports how a batch of submitted IDs was disposed.
type SubmitResult struct {
	Accepted  int      `json:"accepted"`
	Cached    int      `json:"cached"`
	Coalesced int      `json:"coalesced"`
	IDs       []string `json:"ids"` // canonical IDs, submission order
}

// Submit enqueues jobs by ID. Every ID is canonicalized first, so two
// spellings of the same job coalesce; IDs already completed — in this
// process or in the journal of a previous one — are served from cache
// without touching the fleet.
func (s *Server) Submit(ids []string, priority int) (*SubmitResult, error) {
	specs := make([]runner.JobSpec, len(ids))
	for i, id := range ids {
		spec, err := runner.ParseJobID(id)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("sweepq: server is shut down")
	}
	res := &SubmitResult{}
	for _, spec := range specs {
		id := spec.ID()
		res.IDs = append(res.IDs, id)
		s.stats.Submitted++
		if t, ok := s.tasks[id]; ok {
			switch t.state {
			case taskDone, taskFailed:
				s.stats.CacheHits++
				res.Cached++
			default:
				s.stats.Coalesced++
				res.Coalesced++
			}
			continue
		}
		t := &task{
			id: id, shortID: spec.ShortID(),
			priority: priority, seq: s.nextSeq,
		}
		s.nextSeq++
		s.tasks[id] = t
		if jr := s.recoverLocked(t); jr != nil {
			// Journal hit: the job completed in a previous process life.
			t.state = taskDone
			t.result = jr
			t.journal = true
			s.stats.JournalHits++
			res.Cached++
			jr.MergeInto(s.merged)
			continue
		}
		t.state = taskQueued
		heap.Push(&s.queue, t)
		s.stats.Accepted++
		res.Accepted++
		s.cond.Signal()
	}
	return res, nil
}

// recoverLocked tries to satisfy a task from the checkpoint journal: the
// blob must exist and match its recorded digest, and its ID must match the
// task (a digest collision or an edited store would otherwise smuggle in a
// wrong result). Any mismatch falls back to re-running the job.
func (s *Server) recoverLocked(t *task) *JobResult {
	e, ok := s.journal.Entries[t.id]
	if !ok {
		return nil
	}
	blob := s.store.Load(e.Blob)
	if blob == nil || BlobDigest(blob) != e.Digest {
		return nil
	}
	var jr JobResult
	if err := json.Unmarshal(blob, &jr); err != nil || jr.ID != t.id || jr.Err != "" {
		return nil
	}
	return &jr
}

// dispatch is one dispatcher goroutine: pop the highest-priority queued
// task, run it on the fleet, and file the completion.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.queue).(*task)
		t.state = taskRunning
		attempt := t.attempt
		s.mu.Unlock()

		if s.cfg.testJobDelay > 0 {
			time.Sleep(s.cfg.testJobDelay)
		}
		jr, err := s.fleet.Do(t.id, attempt)
		s.finish(t, attempt, jr, err)
	}
}

// finish files one attempt's outcome. Idempotent: a completion for a task
// that is already done (a duplicate delivery, or a late result racing a
// retry) is counted and dropped — first result wins.
func (s *Server) finish(t *task, attempt int, jr *JobResult, transportErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state == taskDone || t.state == taskFailed || t.attempt != attempt {
		s.stats.DuplicateResults++
		return
	}
	if transportErr != nil {
		if s.closed {
			return
		}
		t.retries++
		s.stats.Retries++
		if t.retries > s.cfg.MaxRetries {
			t.state = taskFailed
			t.errMsg = transportErr.Error()
			return
		}
		// Requeue after a backoff that grows with the attempt number; the
		// timer (not the dispatcher) re-pushes so no worker slot blocks.
		t.attempt++
		backoff := s.cfg.RetryBackoff * time.Duration(t.retries)
		time.AfterFunc(backoff, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed || t.state != taskRunning {
				return
			}
			t.state = taskQueued
			heap.Push(&s.queue, t)
			s.cond.Signal()
		})
		return
	}
	if jr.Err != "" {
		// Deterministic job failure: retrying the same canonical ID would
		// fail identically, so fail fast and keep the error addressable.
		t.state = taskFailed
		t.errMsg = jr.Err
		t.result = jr
		return
	}
	blob, err := json.Marshal(jr)
	if err == nil {
		err = s.store.Save(blobName(t.shortID), blob)
	}
	if err == nil {
		err = s.journal.Append(JournalEntry{ID: t.id, Blob: blobName(t.shortID), Digest: BlobDigest(blob)})
	}
	if err != nil {
		// An unjournalable completion is still a completion — serve it from
		// memory; the next process life will re-run the job.
		t.errMsg = fmt.Sprintf("checkpoint failed: %v", err)
	}
	t.state = taskDone
	t.result = jr
	jr.MergeInto(s.merged)
}

func blobName(shortID string) string { return shortID + ".json" }

// progress snapshots the job counts for /progress.
func (s *Server) progress() prof.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := prof.Progress{TotalJobs: len(s.tasks)}
	for _, t := range s.tasks {
		switch t.state {
		case taskDone:
			p.DoneJobs++
		case taskFailed:
			p.Failed++
		case taskRunning:
			p.InFlight++
		}
	}
	return p
}

// Stats snapshots the counters (queue gauges recomputed on the fly).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	st := s.stats
	for _, t := range s.tasks {
		switch t.state {
		case taskQueued:
			st.Queued++
		case taskRunning:
			st.Running++
		case taskDone:
			st.Done++
		case taskFailed:
			st.Failed++
		}
	}
	st.Fleet = s.fleet.Stats()
	return st
}

// Merged returns the live merged registry. Safe for concurrent use — the
// registry locks internally — but for a byte-stable snapshot wait until
// every submitted job is done.
func (s *Server) Merged() *obs.Registry { return s.merged }

// Result returns a completed job's result by canonical ID (nil if the job
// is unknown or not done yet).
func (s *Server) Result(id string) *JobResult {
	spec, err := runner.ParseJobID(id)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tasks[spec.ID()]; t != nil && t.state == taskDone {
		return t.result
	}
	return nil
}

// Wait blocks until every submitted job has completed or failed, polling at
// the given interval (0: 10ms). It returns the failed-job count.
func (s *Server) Wait(poll time.Duration) int {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		s.mu.Lock()
		pending, failed := 0, 0
		for _, t := range s.tasks {
			switch t.state {
			case taskDone:
			case taskFailed:
				failed++
			default:
				pending++
			}
		}
		closed := s.closed
		s.mu.Unlock()
		if pending == 0 || closed {
			return failed
		}
		time.Sleep(poll)
	}
}

// Kill simulates a crash: SIGKILL the whole worker fleet and tear the
// server down without draining. Queued and running jobs are simply lost —
// exactly what the journal exists to absorb.
func (s *Server) Kill() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.fleet.Kill()
	s.http.Close()
	s.wg.Wait()
	s.journal.Close()
}

// Close shuts down in an orderly way: dispatchers stop picking up work,
// workers drain via stdin EOF, the plane and journal close.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.fleet.Close()
	s.http.Close()
	s.journal.Close()
}

// --- HTTP handlers ------------------------------------------------------

// SubmitRequest is the POST /submit payload: explicit job IDs, a sweep
// request expanded server-side, or both.
type SubmitRequest struct {
	Jobs     []string             `json:"jobs,omitempty"`
	Request  *experiments.Request `json:"request,omitempty"`
	Priority int                  `json:"priority,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<24)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ids := append([]string(nil), req.Jobs...)
	if req.Request != nil {
		specs, err := req.Request.Expand()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, spec := range specs {
			ids = append(ids, spec.ID())
		}
	}
	if len(ids) == 0 {
		http.Error(w, "no jobs", http.StatusBadRequest)
		return
	}
	res, err := s.Submit(ids, req.Priority)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

// JobStatus is the GET /jobs/<id> payload.
type JobStatus struct {
	ID        string          `json:"id"`
	ShortID   string          `json:"short_id"`
	State     string          `json:"state"`
	Attempt   int             `json:"attempt"`
	Retries   int             `json:"retries"`
	Journal   bool            `json:"journal,omitempty"`
	Err       string          `json:"err,omitempty"`
	Canonical json.RawMessage `json:"canonical,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	spec, err := runner.ParseJobID(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	t := s.tasks[spec.ID()]
	var js *JobStatus
	if t != nil {
		js = &JobStatus{
			ID: t.id, ShortID: t.shortID, State: string(t.state),
			Attempt: t.attempt, Retries: t.retries, Journal: t.journal, Err: t.errMsg,
		}
		if t.result != nil {
			js.Canonical = t.result.Canonical
		}
	}
	s.mu.Unlock()
	if js == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, js)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// JobIDs returns every known task's canonical ID, sorted — the admin view.
func (s *Server) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
