package sweepq

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"offchip/internal/runner"
	"offchip/internal/tracecache"
)

// WorkerEnv is the environment variable that turns any binary calling
// MaybeWorker into a sweep protocol worker. The fleet sets it when spawning
// workers by re-executing the current binary, which is what lets the test
// binaries themselves serve as the worker fleet.
const WorkerEnv = "SWEEPQ_WORKER"

// MaybeWorker checks WorkerEnv and, when set, runs the worker protocol loop
// over stdin/stdout and exits the process. Call it first thing in main (and
// in TestMain for packages whose tests boot a fleet); in the normal case it
// is a no-op.
func MaybeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sweepq worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain is the worker protocol loop: read a job frame, execute the job
// in-process, write the result frame, repeat until EOF. Job-level failures
// (bad app name, simulator error) travel inside the result; only protocol
// breakdowns (truncated frame, unwritable stdout) abort the loop.
func WorkerMain(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	// Trace caches are memoized per directory: a fleet worker serves many
	// jobs over its lifetime and they share the sweep's on-disk cache.
	caches := map[string]*tracecache.Cache{}
	for {
		var jf jobFrame
		if err := ReadFrame(br, &jf); err != nil {
			if err == io.EOF {
				return nil // orderly close: server shut our stdin
			}
			return err
		}
		rf := resultFrame{ID: jf.ID, Attempt: jf.Attempt}
		spec, err := runner.ParseJobID(jf.ID)
		if err != nil {
			rf.Err = err.Error()
		} else {
			if jf.CacheDir != "" {
				c, ok := caches[jf.CacheDir]
				if !ok {
					c, err = tracecache.New(jf.CacheDir)
					if err != nil {
						// A broken cache dir must not fail the job: caching is
						// excluded from job identity, so run uncached.
						c = nil
					}
					caches[jf.CacheDir] = c
				}
				spec.Cache = c
			}
			rf.Result = ResultOf(spec.Execute())
		}
		if err := writeFlush(bw, rf); err != nil {
			return fmt.Errorf("sweepq: worker write: %w", err)
		}
	}
}
