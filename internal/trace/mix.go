package trace

import (
	"fmt"

	"offchip/internal/sim"
)

// ComposeMix builds a phase-changing multiprogrammed workload from the
// already-generated per-application workloads of a mix
// (workloads.MixSpec). Each application's streams are split at their phase
// (loop-nest) boundaries and re-emitted phase-major — all apps' phase-0
// slices first, then every phase-1 slice, and so on — with the slice of
// phase p bound to core (c + p·rotate) mod cores. The result is marked
// Sequential, so each core executes its slices as consecutive epochs: the
// run really is "phase 0 everywhere, then phase 1 everywhere", and because
// the binding rotates at each boundary, pages first-touched in phase 0 are
// hot from a different mesh region in phase 1 — the workload family where
// online migration can beat any static placement.
//
// The inputs are not mutated (they may come from the trace cache):
// per-phase slices alias the original access arrays read-only. Each entry
// keeps its own address space via AppID = entry index. A slice belonging
// to global phase p carries Phases = make([]int, p+1) — p leading zeros —
// so preTouch's global phase walk allocates its pages during pass p, after
// every earlier phase's first touches, exactly as the full run would.
func ComposeMix(name string, cores int, parts []*sim.Workload, rotates []int) (*sim.Workload, error) {
	if len(parts) != len(rotates) {
		return nil, fmt.Errorf("trace: mix has %d workloads but %d rotations", len(parts), len(rotates))
	}
	if cores <= 0 {
		return nil, fmt.Errorf("trace: mix over %d cores", cores)
	}
	maxPhases := 1
	for _, w := range parts {
		for i := range w.Streams {
			if n := len(w.Streams[i].Phases); n > maxPhases {
				maxPhases = n
			}
		}
	}
	out := &sim.Workload{Name: name, Sequential: true}
	for ph := 0; ph < maxPhases; ph++ {
		for app, w := range parts {
			for i := range w.Streams {
				st := &w.Streams[i]
				lo, hi := phaseRange(st, ph)
				if lo == hi {
					continue
				}
				out.Streams = append(out.Streams, sim.Stream{
					Core:     (st.Core + ph*rotates[app]) % cores,
					AppID:    app,
					Accesses: st.Accesses[lo:hi:hi],
					Phases:   make([]int, ph+1),
				})
			}
		}
	}
	if len(out.Streams) == 0 {
		return nil, fmt.Errorf("trace: mix %s composed to an empty workload", name)
	}
	return out, nil
}

// phaseRange returns the [lo, hi) access range of phase ph in the stream —
// the same convention as the simulator's phase walk. Streams without phase
// markers are one phase.
func phaseRange(st *sim.Stream, ph int) (int, int) {
	if len(st.Phases) == 0 {
		if ph == 0 {
			return 0, len(st.Accesses)
		}
		return 0, 0
	}
	if ph >= len(st.Phases) {
		return 0, 0
	}
	lo := st.Phases[ph]
	hi := len(st.Accesses)
	if ph+1 < len(st.Phases) {
		hi = st.Phases[ph+1]
	}
	return lo, hi
}
