// Package trace turns an affine program plus a layout-pass result into the
// per-core virtual-address streams the simulator replays. Each software
// thread executes its OpenMP-static chunk of every parallel nest in program
// order; every reference becomes one access whose virtual address is the
// array's base plus the layout's Offset — so the same generator produces
// baseline traces (identity layouts) and optimized traces (customized
// layouts), and indexed references resolve through the profiled index
// arrays exactly as the real program would.
package trace

import (
	"fmt"

	"offchip/internal/deps"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/sim"
)

// Options shapes trace generation.
type Options struct {
	// Threads is the total software thread count (default: one per core).
	Threads int
	// MaxAccessesPerThread caps each thread's trace; iteration sampling
	// (a deterministic stride) covers the whole iteration space when the
	// cap is smaller than the full run. Zero means DefaultMaxAccesses;
	// Unlimited disables sampling entirely. Experiments use full traces —
	// sampling perturbs cache reuse differently for different layouts,
	// and the paper's effect must come from request placement, not from
	// miss-count changes (Section 6.1 reports <1% LLC-miss impact).
	MaxAccessesPerThread int
	// AppID tags the streams (distinct IDs isolate address spaces in
	// multiprogrammed runs).
	AppID int
}

// DefaultMaxAccesses bounds per-thread traces so full-suite experiments
// stay laptop-fast while covering every array region.
const DefaultMaxAccesses = 1500

// Unlimited disables the per-thread access cap and iteration sampling.
const Unlimited = -1

// Generate builds the workload for one application under the layouts in
// res. The store supplies index-array contents for irregular references.
func Generate(p *ir.Program, res *layout.Result, m layout.Machine, store *ir.DataStore, opt Options) (*sim.Workload, error) {
	cores := m.Cores()
	threads := opt.Threads
	if threads <= 0 {
		threads = cores
	}
	unlimited := opt.MaxAccessesPerThread < 0
	maxAcc := opt.MaxAccessesPerThread
	if maxAcc == 0 {
		maxAcc = DefaultMaxAccesses
	}
	if unlimited {
		maxAcc = 1 << 62
	}

	bases, err := PlaceArrays(p, res, m)
	if err != nil {
		return nil, err
	}

	// Per-nest access count per iteration, to compute sampling strides.
	w := &sim.Workload{Name: p.Name}
	for t := 0; t < threads; t++ {
		stream := sim.Stream{Core: t % cores, AppID: opt.AppID}
		budget := maxAcc
		for _, nest := range p.Nests {
			stream.Phases = append(stream.Phases, len(stream.Accesses))
			if budget <= 0 {
				// Budget exhausted: the nest contributes no accesses, but
				// every nest still gets its marker so phase indices agree
				// across streams whose budgets ran out at different points.
				continue
			}
			nestBudget := budget / remainingNests(p, nest)
			if nestBudget == 0 {
				nestBudget = 1
			}
			refsPerIter := 0
			for _, s := range nest.Body {
				refsPerIter += len(s.Refs())
			}
			if refsPerIter == 0 {
				continue
			}
			iterBudget := nestBudget / refsPerIter
			if iterBudget == 0 {
				iterBudget = 1
			}
			// Thread's share of the nest's iterations.
			totalIters := nest.TripCount() / int64(threads)
			if totalIters == 0 {
				totalIters = 1
			}
			stride := int64(1)
			if totalIters > int64(iterBudget) {
				stride = totalIters / int64(iterBudget)
			}
			order := loopOrder(nest, res, store)
			var k int64
			iterateOrdered(nest, order, t, threads, func(env map[string]int64) bool {
				if k%stride != 0 {
					k++
					return true
				}
				k++
				for _, s := range nest.Body {
					for _, r := range s.Refs() {
						if len(stream.Accesses) >= maxAcc {
							return false
						}
						al := res.Layout(r.Array)
						coord := ir.EvalRef(r, env, store)
						off := al.Offset(coord)
						stream.Accesses = append(stream.Accesses, sim.Access{
							VAddr:     bases[r.Array] + off,
							DesiredMC: int8(al.DesiredMC(off)),
						})
					}
				}
				return len(stream.Accesses) < maxAcc
			})
			budget = maxAcc - len(stream.Accesses)
		}
		w.Streams = append(w.Streams, stream)
	}
	return w, nil
}

// remainingNests counts nests from the given one to the end, so earlier
// nests don't consume the whole budget.
func remainingNests(p *ir.Program, from *ir.LoopNest) int {
	for i, n := range p.Nests {
		if n == from {
			return len(p.Nests) - i
		}
	}
	return 1
}

// PlaceArrays assigns each array a base virtual address aligned so that the
// MC-select and home-bank bits of offset zero are zero: bases are multiples
// of both NumMCs·PageBytes and Cores·LineBytes (the padding alignment of
// Section 5.3).
func PlaceArrays(p *ir.Program, res *layout.Result, m layout.Machine) (map[*ir.Array]int64, error) {
	align := m.PageBytes * int64(m.NumMCs)
	if cl := m.LineUnit() * int64(m.Cores()); cl > align {
		if cl%align == 0 {
			align = cl
		} else {
			align *= cl // fallback: a common multiple
		}
	}
	bases := map[*ir.Array]int64{}
	var next int64
	for _, arr := range p.Arrays {
		bases[arr] = next
		size := res.Layout(arr).SizeBytes()
		if size <= 0 {
			return nil, fmt.Errorf("trace: array %s has size %d", arr.Name, size)
		}
		next += (size + align - 1) / align * align
	}
	return bases, nil
}

// Merge combines the streams of several workloads (multiprogrammed mixes).
func Merge(name string, ws ...*sim.Workload) *sim.Workload {
	out := &sim.Workload{Name: name}
	for _, w := range ws {
		out.Streams = append(out.Streams, w.Streams...)
	}
	return out
}

// loopOrder emulates the node compiler's cache-oriented loop permutation
// (Section 6.1: original and optimized codes are both compiled "with the
// highest level of optimization, enabling … loop permutation"): it returns
// the nest's loop indices with the loop whose unit step moves the smallest
// distance in the (layout-mapped) address space placed innermost. Both the
// baseline and the optimized trace therefore enjoy the best loop order for
// their own layout, so the two runs differ in where misses go, not in how
// often they miss — matching the paper's <1% LLC-miss impact.
//
// Candidates are filtered for legality: the moved loop's variable must not
// appear in another loop's bounds, and the permutation must preserve every
// data dependence (checked with internal/deps).
func loopOrder(nest *ir.LoopNest, res *layout.Result, store *ir.DataStore) []int {
	m := nest.Depth()
	order := make([]int, 0, m)
	// Representative iteration: the midpoint of each loop's bounds under
	// an all-midpoint environment (evaluated outside-in).
	env := map[string]int64{}
	for _, l := range nest.Loops {
		lo, hi := l.Lower.Eval(env), l.Upper.Eval(env)
		env[l.Var] = (lo + hi) / 2
	}
	best, bestCost := m-1, int64(-1)
	for li := m - 1; li >= 0; li-- {
		v := nest.Loops[li].Var
		// Legality, part 1: a loop may move innermost only if no other
		// loop's bounds reference its variable (e.g. hpccg's nonzero loop
		// runs 8·row .. 8·row+8 — row must stay outside it).
		legal := true
		for lj, other := range nest.Loops {
			if lj == li {
				continue
			}
			if other.Lower.Coeff(v) != 0 || other.Upper.Coeff(v) != 0 {
				legal = false
				break
			}
		}
		if !legal {
			continue
		}
		// Legality, part 2: the permutation must preserve every data
		// dependence of the nest (loop permutation, unlike the data
		// transformation itself, is constrained by dependences).
		if li != m-1 && !deps.InnermostLegal(nest, li) {
			continue
		}
		var cost int64
		for _, s := range nest.Body {
			for _, r := range s.Refs() {
				al := res.Layout(r.Array)
				base := ir.EvalRef(r, env, store)
				env[v]++
				next := ir.EvalRef(r, env, store)
				env[v]--
				d := al.Offset(next) - al.Offset(base)
				if d < 0 {
					d = -d
				}
				cost += d
			}
		}
		if bestCost == -1 || cost < bestCost {
			best, bestCost = li, cost
		}
	}
	for li := 0; li < m; li++ {
		if li != best {
			order = append(order, li)
		}
	}
	return append(order, best)
}

// iterateOrdered enumerates the thread's chunk of the nest with the loops
// visited in the given order (a permutation of loop indices). Bounds are
// evaluated when a loop is entered; the order produced by loopOrder keeps
// every bound's dependencies already bound.
func iterateOrdered(nest *ir.LoopNest, order []int, t, threads int, yield func(map[string]int64) bool) bool {
	env := make(map[string]int64, nest.Depth())
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == len(order) {
			return yield(env)
		}
		l := nest.Loops[order[d]]
		lo, hi := l.Lower.Eval(env), l.Upper.Eval(env)
		if order[d] == nest.ParDepth {
			lo, hi = ir.ThreadChunk(lo, hi, t, threads)
		}
		for v := lo; v < hi; v++ {
			env[l.Var] = v
			if !rec(d + 1) {
				return false
			}
		}
		delete(env, l.Var)
		return true
	}
	return rec(0)
}
