package trace

import (
	"testing"

	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/sim"
)

const src = `
program t
array A[64][64]
array B[64][64]
parfor i = 0 .. 64 {
  for j = 0 .. 64 {
    A[i][j] = A[i][j] + B[i][j]
  }
}
`

func machine() layout.Machine {
	return layout.Machine{
		MeshX: 4, MeshY: 4, NumMCs: 4,
		LineBytes: 64, PageBytes: 512,
		L2: layout.PrivateL2, Interleave: layout.LineInterleave,
	}
}

func optimize(t *testing.T, m layout.Machine, src string) (*ir.Program, *layout.Result) {
	t.Helper()
	p := ir.MustParse(src)
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	res, err := layout.Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestGenerateBasics(t *testing.T) {
	m := machine()
	p, res := optimize(t, m, src)
	w, err := Generate(p, res, m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Streams) != 16 {
		t.Fatalf("streams = %d, want 16 (one per core)", len(w.Streams))
	}
	for i, s := range w.Streams {
		if s.Core != i {
			t.Errorf("stream %d on core %d", i, s.Core)
		}
		if len(s.Accesses) == 0 {
			t.Errorf("stream %d empty", i)
		}
		if len(s.Accesses) > DefaultMaxAccesses {
			t.Errorf("stream %d has %d accesses, cap %d", i, len(s.Accesses), DefaultMaxAccesses)
		}
	}
}

func TestGenerateCapsAndSamples(t *testing.T) {
	m := machine()
	p, res := optimize(t, m, src)
	w, err := Generate(p, res, m, nil, Options{MaxAccessesPerThread: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range w.Streams {
		if len(s.Accesses) > 60 {
			t.Errorf("stream %d: %d accesses", i, len(s.Accesses))
		}
	}
	// Sampling must still cover distant rows of the thread's chunk: the
	// last thread's accesses should touch high addresses.
	last := w.Streams[15]
	var maxAddr int64
	for _, a := range last.Accesses {
		if a.VAddr > maxAddr {
			maxAddr = a.VAddr
		}
	}
	if maxAddr == 0 {
		t.Error("sampled trace collapsed to address 0")
	}
}

const multiNestSrc = `
program multi
array A[32][32]
array B[32][32]
array C[32][32]

parfor i = 0 .. 32 {
  for j = 0 .. 32 {
    A[i][j] = B[i][j] + C[i][j]
  }
}

parfor i = 0 .. 32 {
  for j = 0 .. 32 {
    B[i][j] = A[i][j]
  }
}

parfor i = 0 .. 32 {
  for j = 0 .. 32 {
    C[i][j] = C[i][j] + A[i][j]
  }
}
`

func TestPhaseMarkerPerNestTinyBudget(t *testing.T) {
	// Even when a thread's access budget runs out early, every nest must
	// still get a phase marker, so phase indices agree across streams whose
	// budgets ran out at different points — and the cap is exact: a stream
	// must never exceed MaxAccessesPerThread, not even by refsPerIter−1.
	m := machine()
	p, res := optimize(t, m, multiNestSrc)
	for _, cap := range []int{1, 2, 4, 7, 10} {
		w, err := Generate(p, res, m, nil, Options{MaxAccessesPerThread: cap})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range w.Streams {
			if len(s.Phases) != len(p.Nests) {
				t.Fatalf("cap %d: stream %d has %d phase markers, want %d (one per nest)",
					cap, i, len(s.Phases), len(p.Nests))
			}
			if len(s.Accesses) > cap {
				t.Errorf("cap %d: stream %d has %d accesses", cap, i, len(s.Accesses))
			}
			prev := 0
			for n, ph := range s.Phases {
				if ph < prev || ph > len(s.Accesses) {
					t.Errorf("cap %d: stream %d phase %d marker %d out of order (prev %d, accesses %d)",
						cap, i, n, ph, prev, len(s.Accesses))
				}
				prev = ph
			}
		}
	}
}

func TestCapExactWithMultipleRefsPerIter(t *testing.T) {
	// Three refs per iteration and a cap that is not a multiple of three:
	// the clamp must hit mid-iteration instead of overshooting.
	m := machine()
	p, res := optimize(t, m, multiNestSrc)
	w, err := Generate(p, res, m, nil, Options{MaxAccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range w.Streams {
		if len(s.Accesses) > 100 {
			t.Errorf("stream %d has %d accesses, cap 100", i, len(s.Accesses))
		}
	}
}

func TestThreadsOptionAndBinding(t *testing.T) {
	m := machine()
	p, res := optimize(t, m, src)
	w, err := Generate(p, res, m, nil, Options{Threads: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Streams) != 32 {
		t.Fatalf("streams = %d", len(w.Streams))
	}
	// Threads bind round-robin: thread 16 shares core 0.
	if w.Streams[16].Core != 0 {
		t.Errorf("thread 16 on core %d", w.Streams[16].Core)
	}
}

func TestPlaceArraysAligned(t *testing.T) {
	m := machine()
	p, res := optimize(t, m, src)
	bases, err := PlaceArrays(p, res, m)
	if err != nil {
		t.Fatal(err)
	}
	align := m.PageBytes * int64(m.NumMCs)
	if cl := m.LineBytes * int64(m.Cores()); cl > align {
		align = cl
	}
	seen := map[int64]bool{}
	for arr, b := range bases {
		if b%align != 0 {
			t.Errorf("array %s base %d misaligned", arr.Name, b)
		}
		if seen[b] {
			t.Errorf("arrays share base %d", b)
		}
		seen[b] = true
	}
}

func TestOptimizedAndBaselineDiffer(t *testing.T) {
	m := machine()
	p := ir.MustParse(`
program transposed
array Z[64][64]
parfor i = 1 .. 63 {
  for j = 1 .. 63 {
    Z[j][i] = Z[j-1][i] + Z[j+1][i]
  }
}
`)
	cm, err := layout.MappingM1(m, layout.PlacementCorners(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := layout.Optimize(p, m, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: identity layouts.
	baseRes := &layout.Result{Program: p, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
	opt, err := Generate(p, res, m, nil, Options{MaxAccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Generate(p, baseRes, m, nil, Options{MaxAccessesPerThread: 100})
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range opt.Streams {
		for j := range opt.Streams[i].Accesses {
			if opt.Streams[i].Accesses[j].VAddr != base.Streams[i].Accesses[j].VAddr {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("optimized and baseline traces identical for a transposed kernel")
	}
}

func TestMerge(t *testing.T) {
	a := Generate2(t)
	b := Generate2(t)
	m := Merge("mix", a, b)
	if len(m.Streams) != len(a.Streams)+len(b.Streams) {
		t.Errorf("merged %d streams", len(m.Streams))
	}
	if m.Name != "mix" {
		t.Errorf("name = %q", m.Name)
	}
}

// Generate2 builds a tiny workload for Merge tests.
func Generate2(t *testing.T) (w *sim.Workload) {
	t.Helper()
	m := machine()
	p, res := optimize(t, m, src)
	ww, err := Generate(p, res, m, nil, Options{MaxAccessesPerThread: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ww
}
