package tracecache

import (
	"encoding/binary"
	"fmt"

	"offchip/internal/sim"
)

// The on-disk and in-memory wire format, version 1:
//
//	magic "OTC1"
//	uvarint keyHash            (integrity: must match the requested key)
//	uvarint len(name), name
//	uvarint nStreams
//	uvarint totalAccesses      (Σ over streams — lets a decoder size buffers once)
//	uvarint totalPhases
//	per stream:
//	  uvarint core, uvarint appID
//	  uvarint nPhases, phase markers as uvarint deltas
//	  uvarint nAccesses
//	  VAddrs as zigzag-varint deltas from the previous access's VAddr
//	  DesiredMC as run-length pairs: uvarint runLen, 1 byte value
//
// Per-core streams walk arrays with mostly constant strides, so address
// deltas are small and repetitive, and DesiredMC changes only at layout
// row-group boundaries — the two properties the delta + RLE coding exploits.
const magic = "OTC1"

// Encode serializes a workload into the delta-encoded binary form.
// keyHash ties the blob to the cache key that produced it; decoders verify
// it so a stale or misplaced file can never masquerade as a hit.
func Encode(w *sim.Workload, keyHash uint64) []byte {
	var totalAcc, totalPh int
	for i := range w.Streams {
		totalAcc += len(w.Streams[i].Accesses)
		totalPh += len(w.Streams[i].Phases)
	}
	// Worst-case sizing is cheap to overshoot slightly; append grows once.
	buf := make([]byte, 0, 64+len(w.Name)+totalAcc*3+totalPh*2+len(w.Streams)*16)
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, keyHash)
	buf = binary.AppendUvarint(buf, uint64(len(w.Name)))
	buf = append(buf, w.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(w.Streams)))
	buf = binary.AppendUvarint(buf, uint64(totalAcc))
	buf = binary.AppendUvarint(buf, uint64(totalPh))
	for i := range w.Streams {
		st := &w.Streams[i]
		buf = binary.AppendUvarint(buf, uint64(st.Core))
		buf = binary.AppendUvarint(buf, uint64(st.AppID))
		buf = binary.AppendUvarint(buf, uint64(len(st.Phases)))
		prevPh := 0
		for _, ph := range st.Phases {
			buf = binary.AppendUvarint(buf, uint64(ph-prevPh))
			prevPh = ph
		}
		buf = binary.AppendUvarint(buf, uint64(len(st.Accesses)))
		var prev int64
		for _, a := range st.Accesses {
			buf = binary.AppendVarint(buf, a.VAddr-prev)
			prev = a.VAddr
		}
		for j := 0; j < len(st.Accesses); {
			mc := st.Accesses[j].DesiredMC
			run := 1
			for j+run < len(st.Accesses) && st.Accesses[j+run].DesiredMC == mc {
				run++
			}
			buf = binary.AppendUvarint(buf, uint64(run))
			buf = append(buf, byte(mc))
			j += run
		}
	}
	return buf
}

// Decoder decodes encoded workloads, reusing its buffers across calls so the
// steady-state (cache-hit) decode path performs no allocations. The returned
// workload aliases the decoder's buffers: it is invalidated by the next
// Decode call on the same decoder.
type Decoder struct {
	w       sim.Workload
	streams []sim.Stream
	accs    []sim.Access
	phases  []int
	name    []byte
	nameStr string // cached string form of name (avoids a per-Decode conversion)
}

// Decode decodes data into a workload, verifying the magic and key hash.
func (d *Decoder) Decode(data []byte, keyHash uint64) (*sim.Workload, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("tracecache: bad magic")
	}
	r := reader{data: data, pos: len(magic)}
	if h := r.uvarint(); h != keyHash {
		return nil, fmt.Errorf("tracecache: key hash mismatch (got %016x, want %016x)", h, keyHash)
	}
	nameLen := int(r.uvarint())
	d.name = r.bytes(nameLen, d.name)
	nStreams := int(r.uvarint())
	totalAcc := int(r.uvarint())
	totalPh := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	// Sanity bounds: every access costs ≥1 encoded byte, so a corrupt header
	// cannot make us allocate unboundedly. Each count is bounded on its own —
	// summing first would let two huge counts overflow int and slip past the
	// check (found by FuzzDecodeOTC1).
	limit := len(data) * 8
	if nStreams < 0 || totalAcc < 0 || totalPh < 0 ||
		nStreams > limit || totalAcc > limit || totalPh > limit {
		return nil, fmt.Errorf("tracecache: implausible header (%d streams, %d accesses)", nStreams, totalAcc)
	}
	d.streams = grow(d.streams, nStreams)
	d.accs = grow(d.accs, totalAcc)
	d.phases = grow(d.phases, totalPh)
	accBase, phBase := 0, 0
	for i := 0; i < nStreams; i++ {
		st := &d.streams[i]
		st.Core = int(r.uvarint())
		st.AppID = int(r.uvarint())
		nPh := int(r.uvarint())
		if nPh < 0 || phBase+nPh > totalPh {
			return nil, fmt.Errorf("tracecache: phase count overruns header total")
		}
		prevPh := 0
		for p := 0; p < nPh; p++ {
			prevPh += int(r.uvarint())
			d.phases[phBase+p] = prevPh
		}
		st.Phases = d.phases[phBase : phBase+nPh : phBase+nPh]
		phBase += nPh
		nAcc := int(r.uvarint())
		if nAcc < 0 || accBase+nAcc > totalAcc {
			return nil, fmt.Errorf("tracecache: access count overruns header total")
		}
		var prev int64
		for a := 0; a < nAcc; a++ {
			prev += r.varint()
			d.accs[accBase+a].VAddr = prev
		}
		for a := 0; a < nAcc; {
			run := int(r.uvarint())
			mc := int8(r.byte())
			if r.err != nil || run <= 0 || a+run > nAcc {
				return nil, fmt.Errorf("tracecache: bad DesiredMC run")
			}
			for k := 0; k < run; k++ {
				d.accs[accBase+a+k].DesiredMC = mc
			}
			a += run
		}
		st.Accesses = d.accs[accBase : accBase+nAcc : accBase+nAcc]
		accBase += nAcc
	}
	if r.err != nil {
		return nil, r.err
	}
	if accBase != totalAcc || phBase != totalPh {
		return nil, fmt.Errorf("tracecache: stream totals disagree with header")
	}
	if string(d.name) != d.nameStr { // compiler elides the conversion here
		d.nameStr = string(d.name)
	}
	d.w.Name = d.nameStr
	d.w.Streams = d.streams[:nStreams:nStreams]
	return &d.w, nil
}

// Decode is the one-shot form: fresh buffers, safe to retain indefinitely.
func Decode(data []byte, keyHash uint64) (*sim.Workload, error) {
	var d Decoder
	return d.Decode(data, keyHash)
}

// grow returns s resized to n, reusing capacity when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// reader is a bounds-checked sequential decoder over a byte slice; the
// first failure sticks in err and poisons every later read with zeros.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("tracecache: truncated uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("tracecache: truncated varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.err = fmt.Errorf("tracecache: truncated at %d", r.pos)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) bytes(n int, dst []byte) []byte {
	if r.err != nil {
		return dst[:0]
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("tracecache: truncated %d-byte field at %d", n, r.pos)
		return dst[:0]
	}
	dst = append(dst[:0], r.data[r.pos:r.pos+n]...)
	r.pos += n
	return dst
}
