package tracecache

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"offchip/internal/sim"
)

// fuzzSeedWorkloads are small but structurally complete workloads: multiple
// streams, negative address deltas, DesiredMC runs, phase markers, and an
// empty stream.
func fuzzSeedWorkloads() []*sim.Workload {
	return []*sim.Workload{
		{Name: "tiny", Streams: []sim.Stream{
			{Core: 0, AppID: 0, Accesses: []sim.Access{
				{VAddr: 0, DesiredMC: 0}, {VAddr: 64, DesiredMC: 0}, {VAddr: 128, DesiredMC: 1},
			}, Phases: []int{1}},
		}},
		{Name: "multi-stream", Streams: []sim.Stream{
			{Core: 3, AppID: 1, Accesses: []sim.Access{
				{VAddr: 4096, DesiredMC: 2}, {VAddr: 0, DesiredMC: 2}, {VAddr: 1 << 40, DesiredMC: 3},
			}, Phases: []int{0, 2}},
			{Core: 7, AppID: 1},
			{Core: 9, AppID: 2, Accesses: []sim.Access{{VAddr: -8, DesiredMC: -1}}},
		}},
	}
}

// FuzzDecodeOTC1 throws arbitrary byte soup at the delta-encoded trace
// decoder. The contract under fuzzing: Decode must error cleanly — never
// panic, never allocate unboundedly — on corrupt input, and anything it does
// accept must re-encode and re-decode to the identical workload.
func FuzzDecodeOTC1(f *testing.F) {
	for _, w := range fuzzSeedWorkloads() {
		f.Add(Encode(w, 0x1234))
	}
	// Corruption seeds: truncations and a flipped header byte.
	blob := Encode(fuzzSeedWorkloads()[1], 0x1234)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:5])
	mut := bytes.Clone(blob)
	mut[7] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The caller always knows the key hash it expects; for fuzzing, read
		// the hash the blob itself claims (when present) so the interesting
		// paths past the integrity check get exercised too.
		keyHash := uint64(0)
		if len(data) > len(magic) {
			if h, n := binary.Uvarint(data[len(magic):]); n > 0 {
				keyHash = h
			}
		}
		w, err := Decode(data, keyHash)
		if err != nil {
			return // rejected cleanly — that's the contract
		}
		// Accepted input must round-trip exactly.
		re := Encode(w, keyHash)
		w2, err := Decode(re, keyHash)
		if err != nil {
			t.Fatalf("re-decode of re-encoded accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(w), normalize(w2)) {
			t.Fatalf("round trip not stable:\n got %+v\nwant %+v", w2, w)
		}
		// And a wrong key hash must always be rejected.
		if _, err := Decode(data, keyHash+1); err == nil {
			t.Fatal("decode accepted a blob under the wrong key hash")
		}
	})
}

// TestDecodeHeaderCountOverflow pins the fix FuzzDecodeOTC1 motivated: a
// header whose access and phase counts are each ~2^62 used to overflow the
// summed plausibility bound and reach the allocator. Each count must be
// bounded individually.
func TestDecodeHeaderCountOverflow(t *testing.T) {
	var buf []byte
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, 0)     // key hash
	buf = binary.AppendUvarint(buf, 0)     // name len
	buf = binary.AppendUvarint(buf, 1)     // streams
	buf = binary.AppendUvarint(buf, 1<<62) // total accesses
	buf = binary.AppendUvarint(buf, 1<<62) // total phases (sum overflows int64)
	buf = append(buf, make([]byte, 64)...) // padding so the bound isn't trivially 0
	if _, err := Decode(buf, 0); err == nil {
		t.Fatal("decoder accepted a header with overflowing counts")
	}
}

// normalize maps empty slices to nil so DeepEqual compares content, not
// the len-0 representation Decode happens to produce.
func normalize(w *sim.Workload) *sim.Workload {
	out := &sim.Workload{Name: w.Name}
	for _, st := range w.Streams {
		if len(st.Accesses) == 0 {
			st.Accesses = nil
		}
		if len(st.Phases) == 0 {
			st.Phases = nil
		}
		out.Streams = append(out.Streams, st)
	}
	return out
}
