package tracecache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the content-addressed on-disk blob layer underneath the trace
// cache, factored out so other subsystems can persist derived artifacts the
// same way (the sweep service keys job-result blobs on canonical job IDs).
// Writers are atomic (temp file + rename), so concurrent processes sharing a
// directory never observe a torn blob; identity lives in the caller-chosen
// file name, which by convention embeds a readability prefix plus a stable
// hash (see SanitizeName and Key.filename).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the blob directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracecache: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Load reads a blob by name. Any failure (most commonly a missing file)
// degrades to nil — blob stores are caches, never sources of truth.
func (s *Store) Load(name string) []byte {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil
	}
	return data
}

// Save writes a blob atomically (temp file + rename).
func (s *Store) Save(name string, data []byte) error {
	f, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(s.dir, name))
	}
	if werr != nil {
		os.Remove(tmp)
	}
	return werr
}

// Remove deletes a blob (a decoder that finds corruption removes the file so
// it cannot fail every future run).
func (s *Store) Remove(name string) {
	os.Remove(filepath.Join(s.dir, name))
}

// SanitizeName maps an arbitrary identifier to the filename-safe charset
// blob names use as their readability prefix.
func SanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}
