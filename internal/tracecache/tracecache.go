// Package tracecache memoizes trace generation. A per-core virtual-address
// stream depends only on (program, profiled index contents, thread count,
// access cap, machine geometry, layout result) — not on the simulator
// configuration — so one generated workload can back every (seed, policy,
// bank count, MLP window) job that shares those inputs. The cache keys on a
// fingerprint of exactly those inputs, shares streams in-process through a
// keyed singleflight map (concurrent requesters of the same key block on one
// generation), and optionally persists the delta-encoded form (see encode.go)
// under a content-addressed path so repeated sweeps and replays skip
// generation entirely.
//
// Cached workloads are byte-identical to freshly generated ones; the cache
// is purely a wall-clock lever and never changes results.
package tracecache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/trace"
)

// Key identifies one generated workload. All fields are comparable, so the
// in-process map keys on the struct itself; the disk path keys on its hash.
type Key struct {
	Program string // program name (human-readable path component)
	AppID   int
	Threads int // effective thread count (defaults resolved)
	Cap     int // effective per-thread access cap (-1: unlimited)

	// ProgFP covers the program text and the profiled index-array contents;
	// MachineFP the geometry trace generation reads (mesh, MCs, line/page
	// sizes, L2 and interleaving kinds); LayoutFP the layout result, probed
	// through its exported surface (Offset/DesiredMC at deterministic
	// pseudo-random coordinates) since the placement tables are unexported.
	ProgFP    uint64
	MachineFP uint64
	LayoutFP  uint64
}

// Hash is the key's stable 64-bit fingerprint — the disk filename component
// and the integrity tag embedded in encoded blobs.
func (k Key) Hash() uint64 {
	h := newHasher()
	h.str(k.Program)
	h.i64(int64(k.AppID))
	h.i64(int64(k.Threads))
	h.i64(int64(k.Cap))
	h.u64(k.ProgFP)
	h.u64(k.MachineFP)
	h.u64(k.LayoutFP)
	return h.sum()
}

// filename returns the content-addressed cache file name. The program name
// is a readability prefix; identity lives in the hash.
func (k Key) filename() string {
	return fmt.Sprintf("%s-%016x.otc", SanitizeName(k.Program), k.Hash())
}

// KeyOf computes the cache key for one trace.Generate call.
func KeyOf(p *ir.Program, res *layout.Result, m layout.Machine, store *ir.DataStore, opt trace.Options) Key {
	threads := opt.Threads
	if threads <= 0 {
		threads = m.Cores()
	}
	cap := opt.MaxAccessesPerThread
	if cap == 0 {
		cap = trace.DefaultMaxAccesses
	}
	if cap < 0 {
		cap = -1
	}
	return Key{
		Program:   p.Name,
		AppID:     opt.AppID,
		Threads:   threads,
		Cap:       cap,
		ProgFP:    fingerprintProgram(p, store),
		MachineFP: fingerprintMachine(m),
		LayoutFP:  fingerprintLayouts(p, res),
	}
}

// Stats counts cache traffic (atomically; safe to read mid-sweep).
type Stats struct {
	Hits       int64 // in-process hits (including singleflight waiters)
	Misses     int64 // full generations
	DiskHits   int64 // loads satisfied from the on-disk cache
	DiskWrites int64 // encoded blobs written
}

// Cache memoizes generated workloads. The zero value is not usable; New
// builds one. A nil *Cache is valid and means "no caching" — every method
// degrades to calling trace.Generate directly.
type Cache struct {
	store *Store // nil = in-process only

	mu      sync.Mutex
	entries map[Key]*entry

	hits, misses, diskHits, diskWrites atomic.Int64
}

// entry is one singleflight slot: the first requester generates (or loads),
// everyone else blocks on ready.
type entry struct {
	ready chan struct{}
	w     *sim.Workload
	err   error
}

// New returns a cache. A non-empty dir enables the on-disk layer (created
// if missing); dir == "" keeps the cache in-process only.
func New(dir string) (*Cache, error) {
	c := &Cache{entries: map[Key]*entry{}}
	if dir != "" {
		s, err := NewStore(dir)
		if err != nil {
			return nil, err
		}
		c.store = s
	}
	return c, nil
}

// Stats snapshots the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskWrites: c.diskWrites.Load(),
	}
}

// Generate returns the workload for the given inputs, generating it at most
// once per key per process (and per disk cache lifetime). The returned
// workload carries fresh Stream headers — callers may restamp Core/AppID
// (multiprogrammed mixes do) without corrupting the shared entry — but the
// Accesses and Phases slices are shared and must be treated as read-only,
// exactly like a workload shared between core.Compare's three runs.
func (c *Cache) Generate(p *ir.Program, res *layout.Result, m layout.Machine, store *ir.DataStore, opt trace.Options) (*sim.Workload, error) {
	if c == nil {
		return trace.Generate(p, res, m, store, opt)
	}
	key := KeyOf(p, res, m, store, opt)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.hits.Add(1)
		return copyHeader(e.w), nil
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.w, e.err = c.fill(key, p, res, m, store, opt)
	if e.err != nil {
		// Drop the failed slot so a later call can retry (e.g. after a
		// transient disk error); waiters already parked still see e.err.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	if e.err != nil {
		return nil, e.err
	}
	return copyHeader(e.w), nil
}

// fill resolves a miss: disk first, then real generation (with write-back).
func (c *Cache) fill(key Key, p *ir.Program, res *layout.Result, m layout.Machine, store *ir.DataStore, opt trace.Options) (*sim.Workload, error) {
	if c.store != nil {
		if w := c.load(key); w != nil {
			c.diskHits.Add(1)
			return w, nil
		}
	}
	c.misses.Add(1)
	w, err := trace.Generate(p, res, m, store, opt)
	if err != nil {
		return nil, err
	}
	if c.store != nil {
		if c.store.Save(key.filename(), Encode(w, key.Hash())) == nil {
			c.diskWrites.Add(1)
		}
	}
	return w, nil
}

// load reads and decodes the key's cache file. Any failure — missing file,
// corruption, key-hash mismatch — degrades to a miss; a corrupt file is
// removed so it cannot fail every future run.
func (c *Cache) load(key Key) *sim.Workload {
	data := c.store.Load(key.filename())
	if data == nil {
		return nil
	}
	w, err := Decode(data, key.Hash())
	if err != nil {
		c.store.Remove(key.filename())
		return nil
	}
	return w
}

// copyHeader returns a workload sharing the entry's access/phase storage but
// owning its Stream headers, so per-caller restamping (AppID for mixes)
// cannot leak into the cache.
func copyHeader(w *sim.Workload) *sim.Workload {
	return &sim.Workload{Name: w.Name, Streams: append([]sim.Stream(nil), w.Streams...)}
}

// fingerprintProgram hashes the program's printed form (which round-trips
// through the parser) plus the profiled contents of every array that has
// any — two workload versions that differ in source or profile data can
// never share an entry.
func fingerprintProgram(p *ir.Program, store *ir.DataStore) uint64 {
	h := newHasher()
	h.str(p.String())
	for _, arr := range p.Arrays {
		vals := store.Contents(arr)
		h.i64(int64(len(vals)))
		for _, v := range vals {
			h.i64(v)
		}
	}
	return h.sum()
}

// fingerprintMachine hashes the geometry trace generation reads.
func fingerprintMachine(m layout.Machine) uint64 {
	h := newHasher()
	h.i64(int64(m.MeshX))
	h.i64(int64(m.MeshY))
	h.i64(int64(m.NumMCs))
	h.i64(m.LineBytes)
	h.i64(m.LineUnit())
	h.i64(m.PageBytes)
	h.i64(int64(m.L2))
	h.i64(int64(m.Interleave))
	return h.sum()
}

// layoutProbes is the per-array probe count. Each probe hashes Offset and
// DesiredMC at a deterministic pseudo-random coordinate, so two layouts that
// differ anywhere a generated trace could observe them fingerprint apart
// with overwhelming probability.
const layoutProbes = 32

// fingerprintLayouts hashes the layout result through its exported surface.
func fingerprintLayouts(p *ir.Program, res *layout.Result) uint64 {
	h := newHasher()
	for _, arr := range p.Arrays {
		al := res.Layout(arr)
		h.str(arr.Name)
		for _, d := range arr.Dims {
			h.i64(d)
		}
		h.i64(arr.ElemSize)
		if al.Optimized {
			h.i64(1)
		} else {
			h.i64(0)
		}
		size := al.SizeBytes()
		h.i64(size)
		coord := make([]int64, len(arr.Dims))
		seed := fnv64str(arr.Name)
		for t := 0; t < layoutProbes; t++ {
			x := splitmix64(seed + uint64(t)*0x9e3779b97f4a7c15)
			for d, dim := range arr.Dims {
				x = splitmix64(x)
				if dim > 0 {
					coord[d] = int64(x % uint64(dim))
				} else {
					coord[d] = 0
				}
			}
			off := al.Offset(coord)
			h.i64(off)
			h.i64(int64(al.DesiredMC(off)))
			if size > 0 {
				h.i64(int64(al.DesiredMC(int64(x % uint64(size)))))
			}
		}
	}
	return h.sum()
}

// hasher is FNV-1a over a canonical byte rendering, inlined so fingerprints
// never depend on library changes (the same reason runner inlines fnv64).
type hasher struct{ h uint64 }

func newHasher() *hasher { return &hasher{h: 0xcbf29ce484222325} }

func (h *hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= 0x100000001b3
}

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }

func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *hasher) sum() uint64 { return h.h }

func fnv64str(s string) uint64 {
	h := newHasher()
	h.str(s)
	return h.sum()
}

// splitmix64 decorrelates probe coordinates (same finalizer the runner uses
// for seed derivation).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
