package tracecache_test

// The cache's contract is "byte-identical, wall-clock only": every stream a
// cached Generate returns — in-process hit, disk hit, or miss — must match a
// fresh trace.Generate access for access. The differential sweep below pins
// that for every bundled workload under all three schemes (line/private,
// page/private, line/shared), with both the identity and optimized layouts;
// `make validate` runs this package under -race, which also exercises the
// singleflight paths.

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"offchip/internal/approx"
	"offchip/internal/ir"
	"offchip/internal/layout"
	"offchip/internal/sim"
	"offchip/internal/trace"
	"offchip/internal/tracecache"
	"offchip/internal/workloads"
)

// scheme is one machine configuration of the differential sweep.
type scheme struct {
	name string
	l2   layout.CacheKind
	gran layout.Granularity
}

var schemes = []scheme{
	{"line-private", layout.PrivateL2, layout.LineInterleave},
	{"page-private", layout.PrivateL2, layout.PageInterleave},
	{"line-shared", layout.SharedL2, layout.LineInterleave},
}

// setup loads one app on one scheme's machine and runs the layout pass.
func setup(t *testing.T, app *workloads.App, sc scheme) (*ir.Program, *ir.DataStore, *layout.Result, layout.Machine) {
	t.Helper()
	m := layout.Default8x8()
	m.L2 = sc.l2
	m.Interleave = sc.gran
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		t.Fatal(err)
	}
	p, store, err := app.Load()
	if err != nil {
		t.Fatal(err)
	}
	res, err := layout.Optimize(p, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
	if err != nil {
		t.Fatal(err)
	}
	return p, store, res, m
}

// identityResult mirrors core.Workloads' baseline: no optimized layouts.
func identityResult(p *ir.Program) *layout.Result {
	return &layout.Result{Program: p, Layouts: map[*ir.Array]*layout.ArrayLayout{}}
}

// sameWorkload asserts two workloads are identical stream for stream and
// access for access (nil and empty slices compare equal — decoded workloads
// use empty subslices where fresh ones may carry nil).
func sameWorkload(t *testing.T, tag string, got, want *sim.Workload) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("%s: Name = %q, want %q", tag, got.Name, want.Name)
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("%s: %d streams, want %d", tag, len(got.Streams), len(want.Streams))
	}
	for i := range want.Streams {
		g, w := &got.Streams[i], &want.Streams[i]
		if g.Core != w.Core || g.AppID != w.AppID {
			t.Errorf("%s: stream %d header (%d,%d), want (%d,%d)", tag, i, g.Core, g.AppID, w.Core, w.AppID)
		}
		if len(g.Phases) != len(w.Phases) {
			t.Fatalf("%s: stream %d has %d phases, want %d", tag, i, len(g.Phases), len(w.Phases))
		}
		for j := range w.Phases {
			if g.Phases[j] != w.Phases[j] {
				t.Fatalf("%s: stream %d phase %d = %d, want %d", tag, i, j, g.Phases[j], w.Phases[j])
			}
		}
		if len(g.Accesses) != len(w.Accesses) {
			t.Fatalf("%s: stream %d has %d accesses, want %d", tag, i, len(g.Accesses), len(w.Accesses))
		}
		for j := range w.Accesses {
			if g.Accesses[j] != w.Accesses[j] {
				t.Fatalf("%s: stream %d access %d = %+v, want %+v", tag, i, j, g.Accesses[j], w.Accesses[j])
			}
		}
	}
}

// TestCachedStreamsByteIdentical is the differential sweep: for every
// workload × scheme × (identity, optimized) layout, the workload from a cold
// cache (generate + disk write-back), a warm in-process hit, and a fresh
// process's disk hit must all equal plain trace.Generate — down to the
// encoded bytes.
func TestCachedStreamsByteIdentical(t *testing.T) {
	const cap = 200
	for _, app := range workloads.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			for _, sc := range schemes {
				p, store, optRes, m := setup(t, app, sc)
				dir := t.TempDir()
				cold, err := tracecache.New(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, lay := range []struct {
					name string
					res  *layout.Result
				}{{"identity", identityResult(p)}, {"optimized", optRes}} {
					tag := app.Name + "/" + sc.name + "/" + lay.name
					tOpt := trace.Options{MaxAccessesPerThread: cap}
					fresh, err := trace.Generate(p, lay.res, m, store, tOpt)
					if err != nil {
						t.Fatal(err)
					}
					miss, err := cold.Generate(p, lay.res, m, store, tOpt)
					if err != nil {
						t.Fatal(err)
					}
					sameWorkload(t, tag+"/miss", miss, fresh)
					hit, err := cold.Generate(p, lay.res, m, store, tOpt)
					if err != nil {
						t.Fatal(err)
					}
					sameWorkload(t, tag+"/hit", hit, fresh)
					// A second cache over the same directory simulates a new
					// process: it must be served from disk, identically.
					warm, err := tracecache.New(dir)
					if err != nil {
						t.Fatal(err)
					}
					disk, err := warm.Generate(p, lay.res, m, store, tOpt)
					if err != nil {
						t.Fatal(err)
					}
					sameWorkload(t, tag+"/disk", disk, fresh)
					if ws := warm.Stats(); ws.DiskHits != 1 || ws.Misses != 0 {
						t.Errorf("%s: disk-backed cache stats %+v, want 1 disk hit and no misses", tag, ws)
					}
					if !bytes.Equal(tracecache.Encode(miss, 7), tracecache.Encode(fresh, 7)) {
						t.Errorf("%s: cached workload encodes differently from fresh", tag)
					}
				}
				st := cold.Stats()
				if st.Misses != 2 || st.Hits != 2 || st.DiskWrites != 2 {
					t.Errorf("%s/%s: cold cache stats %+v, want 2 misses, 2 hits, 2 disk writes", app.Name, sc.name, st)
				}
			}
		})
	}
}

// TestEncodeDecodeRoundtrip covers the wire format directly on a synthetic
// workload with the awkward shapes: negative address deltas, an empty
// stream, empty phase lists, long DesiredMC runs.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	w := &sim.Workload{
		Name: "synthetic",
		Streams: []sim.Stream{
			{Core: 0, AppID: 0, Phases: []int{0, 2, 5}, Accesses: []sim.Access{
				{VAddr: 1 << 40, DesiredMC: -1},
				{VAddr: 64, DesiredMC: -1}, // large negative delta
				{VAddr: 128, DesiredMC: 3},
				{VAddr: 192, DesiredMC: 3},
				{VAddr: 0, DesiredMC: 3},
			}},
			{Core: 7, AppID: 2}, // empty stream
			{Core: 63, AppID: 1, Accesses: []sim.Access{{VAddr: 4096, DesiredMC: 0}}},
		},
	}
	const hash = 0xdeadbeefcafe
	blob := tracecache.Encode(w, hash)
	got, err := tracecache.Decode(blob, hash)
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, "roundtrip", got, w)

	// A reused decoder must produce correct output after decoding something
	// larger first (buffer reuse is the whole point of the type).
	var d tracecache.Decoder
	if _, err := d.Decode(blob, hash); err != nil {
		t.Fatal(err)
	}
	small := &sim.Workload{Name: "s", Streams: []sim.Stream{{Core: 1, Accesses: []sim.Access{{VAddr: 8, DesiredMC: -1}}}}}
	blob2 := tracecache.Encode(small, 1)
	got2, err := d.Decode(blob2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, "reuse", got2, small)
}

// TestDecodeRejectsCorruption: wrong key hash, wrong magic, and every
// truncation point must fail cleanly (error, never a panic or a mangled
// workload).
func TestDecodeRejectsCorruption(t *testing.T) {
	w := &sim.Workload{
		Name: "c",
		Streams: []sim.Stream{{Core: 3, Phases: []int{0, 1}, Accesses: []sim.Access{
			{VAddr: 100, DesiredMC: 1}, {VAddr: 164, DesiredMC: 2},
		}}},
	}
	blob := tracecache.Encode(w, 42)
	if _, err := tracecache.Decode(blob, 43); err == nil {
		t.Error("key-hash mismatch accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := tracecache.Decode(bad, 42); err == nil {
		t.Error("bad magic accepted")
	}
	for n := 0; n < len(blob); n++ {
		if _, err := tracecache.Decode(blob[:n], 42); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// TestCorruptFileRegenerates: a torn or garbage cache file must degrade to a
// miss, be removed, and be rewritten with a good copy.
func TestCorruptFileRegenerates(t *testing.T) {
	app := workloads.All()[0]
	p, store, res, m := setup(t, app, schemes[0])
	tOpt := trace.Options{MaxAccessesPerThread: 150}
	fresh, err := trace.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c1, err := tracecache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Generate(p, res, m, store, tOpt); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.otc"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly one", files, err)
	}
	if err := os.WriteFile(files[0], []byte("OTC1 this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := tracecache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c2.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, "after-corruption", w, fresh)
	if st := c2.Stats(); st.DiskHits != 0 || st.Misses != 1 || st.DiskWrites != 1 {
		t.Errorf("stats after corrupt file %+v, want 0 disk hits, 1 miss, 1 rewrite", st)
	}

	// The rewritten file must now serve a third cache from disk.
	c3, err := tracecache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := c3.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, "rewritten", w3, fresh)
	if st := c3.Stats(); st.DiskHits != 1 {
		t.Errorf("rewritten file not served from disk: %+v", st)
	}
}

// TestSingleflight: concurrent requesters of one key share a single
// generation; everyone gets an identical workload. Run under -race via
// `make validate`.
func TestSingleflight(t *testing.T) {
	app := workloads.All()[0]
	p, store, res, m := setup(t, app, schemes[0])
	tOpt := trace.Options{MaxAccessesPerThread: 150}
	fresh, err := trace.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tracecache.New("") // in-process only
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	got := make([]*sim.Workload, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Generate(p, res, m, store, tOpt)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		sameWorkload(t, "caller", got[i], fresh)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats %+v, want exactly 1 miss and %d hits", st, callers-1)
	}
	if st.DiskHits != 0 || st.DiskWrites != 0 {
		t.Errorf("in-process cache touched disk: %+v", st)
	}
}

// TestKeySensitivity: anything trace generation can observe must change the
// key; pure normalization (0 vs default cap, negative caps) must not.
func TestKeySensitivity(t *testing.T) {
	app := workloads.All()[0]
	p, store, res, m := setup(t, app, schemes[0])
	base := tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: 200})

	distinct := map[string]tracecache.Key{
		"cap":      tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: 300}),
		"threads":  tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: 200, Threads: 8}),
		"appid":    tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: 200, AppID: 1}),
		"identity": tracecache.KeyOf(p, identityResult(p), m, store, trace.Options{MaxAccessesPerThread: 200}),
	}
	m2 := m
	m2.Interleave = layout.PageInterleave
	distinct["interleave"] = tracecache.KeyOf(p, res, m2, store, trace.Options{MaxAccessesPerThread: 200})
	seen := map[uint64]string{base.Hash(): "base"}
	for name, k := range distinct {
		if k == base {
			t.Errorf("%s: key did not change", name)
		}
		if prev, dup := seen[k.Hash()]; dup {
			t.Errorf("%s: hash collides with %s", name, prev)
		}
		seen[k.Hash()] = name
	}

	// Normalization: cap 0 means the default; every negative cap means
	// unlimited. These must share entries.
	def := tracecache.KeyOf(p, res, m, store, trace.Options{})
	if got := tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: trace.DefaultMaxAccesses}); got != def {
		t.Error("cap 0 and DefaultMaxAccesses key apart")
	}
	unl := tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: -1})
	if got := tracecache.KeyOf(p, res, m, store, trace.Options{MaxAccessesPerThread: -99}); got != unl {
		t.Error("negative caps key apart")
	}
}

// TestNilCache: a nil *Cache is the documented no-caching mode.
func TestNilCache(t *testing.T) {
	app := workloads.All()[0]
	p, store, res, m := setup(t, app, schemes[0])
	tOpt := trace.Options{MaxAccessesPerThread: 150}
	fresh, err := trace.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}
	var c *tracecache.Cache
	w, err := c.Generate(p, res, m, store, tOpt)
	if err != nil {
		t.Fatal(err)
	}
	sameWorkload(t, "nil-cache", w, fresh)
	if st := c.Stats(); st != (tracecache.Stats{}) {
		t.Errorf("nil cache has stats %+v", st)
	}
}

// BenchmarkDecodeCacheHit is the steady-state cache-hit decode path — a
// reused Decoder over one encoded blob. benchgate pins it at 0 allocs/op
// (`make check`): the decode that every warm sweep job pays must stay
// allocation-free.
func BenchmarkDecodeCacheHit(b *testing.B) {
	app := workloads.All()[0]
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(m.MeshX, m.MeshY))
	if err != nil {
		b.Fatal(err)
	}
	p, store, err := app.Load()
	if err != nil {
		b.Fatal(err)
	}
	res, err := layout.Optimize(p, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
	if err != nil {
		b.Fatal(err)
	}
	w, err := trace.Generate(p, res, m, store, trace.Options{})
	if err != nil {
		b.Fatal(err)
	}
	blob := tracecache.Encode(w, 99)
	var d tracecache.Decoder
	if _, err := d.Decode(blob, 99); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(blob, 99); err != nil {
			b.Fatal(err)
		}
	}
}
