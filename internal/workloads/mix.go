// Phase-changing multiprogrammed mixes: the workload family that rewards
// online page migration. A mix co-schedules several scaled applications and
// rotates each one's thread→core binding at its phase (loop-nest)
// boundaries, so pages first-touched from one corner of the mesh are
// re-touched from another later in the run — the hot set genuinely moves,
// which no single stationary application does. The spec has a canonical
// compact string form (embedded verbatim in job IDs, like
// mem.MigrationSpec), and internal/trace.ComposeMix turns it plus per-app
// traces into one sim.Workload.
package workloads

import (
	"fmt"
	"strconv"
	"strings"
)

// MixEntry is one application of a mix.
type MixEntry struct {
	// App is the workload name (must resolve via ByName).
	App string
	// Rotate shifts the app's thread→core binding by this many cores at
	// every phase boundary: the thread bound to core c runs phase p on core
	// (c + p·Rotate) mod cores. 0 keeps the binding fixed (a stationary
	// participant).
	Rotate int
}

// MixSpec names a phase-changing multiprogrammed mix. The canonical form is
// mixN(app@rotate+app@rotate+...) with N == len(Entries), e.g.
// "mix2(apsi@16+gafort@0)". The form contains no comma or equals sign, so
// it embeds verbatim as a job-ID field (mix=...).
type MixSpec struct {
	Entries []MixEntry
}

// String renders the canonical compact form. It round-trips through
// ParseMixSpec, so job IDs embed it verbatim.
func (s MixSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix%d(", len(s.Entries))
	for i, e := range s.Entries {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s@%d", e.App, e.Rotate)
	}
	b.WriteByte(')')
	return b.String()
}

// Validate rejects non-runnable mixes: unknown applications, negative
// rotations, or an empty entry list.
func (s MixSpec) Validate() error {
	if len(s.Entries) == 0 {
		return fmt.Errorf("workloads: mix has no entries")
	}
	for _, e := range s.Entries {
		if _, ok := ByName(e.App); !ok {
			return fmt.Errorf("workloads: mix names unknown application %q", e.App)
		}
		if e.Rotate < 0 {
			return fmt.Errorf("workloads: mix rotation %d for %s, want >= 0", e.Rotate, e.App)
		}
	}
	return nil
}

// Apps returns the mix's applications in entry order.
func (s MixSpec) Apps() []*App {
	out := make([]*App, len(s.Entries))
	for i, e := range s.Entries {
		out[i], _ = ByName(e.App)
	}
	return out
}

// ParseMixSpec parses the compact form mixN(app@rotate+...). "" means no
// mix (nil). Like ParseMigrationSpec, only the canonical rendering is
// accepted — a spec whose numerals re-render differently ("@+16", "@016")
// or whose N disagrees with the entry count is rejected, because job IDs
// embed the string verbatim and the sweep service dedups jobs by ID bytes.
func ParseMixSpec(s string) (*MixSpec, error) {
	if s == "" {
		return nil, nil
	}
	rest, ok := strings.CutPrefix(s, "mix")
	if !ok {
		return nil, fmt.Errorf("workloads: mix spec %q: want mixN(app@rotate+app@rotate+...)", s)
	}
	ns, rest, ok := strings.Cut(rest, "(")
	if !ok {
		return nil, fmt.Errorf("workloads: mix spec %q lacks the entry list", s)
	}
	body, ok := strings.CutSuffix(rest, ")")
	if !ok {
		return nil, fmt.Errorf("workloads: mix spec %q lacks the closing parenthesis", s)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return nil, fmt.Errorf("workloads: mix entry count %q: %w", ns, err)
	}
	var sp MixSpec
	for _, part := range strings.Split(body, "+") {
		app, rs, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("workloads: mix entry %q is not app@rotate", part)
		}
		rot, err := strconv.Atoi(rs)
		if err != nil {
			return nil, fmt.Errorf("workloads: mix rotation %q: %w", rs, err)
		}
		sp.Entries = append(sp.Entries, MixEntry{App: app, Rotate: rot})
	}
	if n != len(sp.Entries) {
		return nil, fmt.Errorf("workloads: mix spec %q declares %d entries but lists %d", s, n, len(sp.Entries))
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if canon := sp.String(); canon != s {
		return nil, fmt.Errorf("workloads: mix spec %q is not canonical (want %q): job IDs embed the spec verbatim, so only one spelling is accepted", s, canon)
	}
	return &sp, nil
}

// DefaultPhaseMixes are the phase-changing mixes the figmix and figtune
// experiments evaluate: pairs whose rotations move each app's hot pages a
// quarter- or half-mesh away at every loop-nest boundary, so first-touch
// and static compiler placement both go stale mid-run while migration
// adapts.
func DefaultPhaseMixes() []MixSpec {
	return []MixSpec{
		{Entries: []MixEntry{{App: "apsi", Rotate: 16}, {App: "gafort", Rotate: 16}}},
		{Entries: []MixEntry{{App: "swim", Rotate: 32}, {App: "mgrid", Rotate: 32}}},
		{Entries: []MixEntry{{App: "fma3d", Rotate: 16}, {App: "art", Rotate: 48}}},
	}
}
