package workloads

import (
	"strings"
	"testing"
)

func TestParseMixSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    string // canonical form of the parsed spec ("" for nil)
		wantErr bool
	}{
		{in: "", want: ""},
		{in: "mix2(apsi@16+gafort@0)", want: "mix2(apsi@16+gafort@0)"},
		{in: "mix1(swim@0)", want: "mix1(swim@0)"},
		{in: "mix3(fma3d@16+art@48+ammp@0)", want: "mix3(fma3d@16+art@48+ammp@0)"},
		{in: "apsi@16", wantErr: true},                 // no mixN prefix
		{in: "mix2(apsi@16+gafort@0", wantErr: true},   // unclosed
		{in: "mix2 (apsi@16+gafort@0)", wantErr: true}, // stray space
		{in: "mix1(apsi@16+gafort@0)", wantErr: true},  // N disagrees
		{in: "mix3(apsi@16+gafort@0)", wantErr: true},  // N disagrees
		{in: "mix2(apsi@+16+gafort@0)", wantErr: true}, // non-canonical numeral
		{in: "mix2(apsi@016+gafort@0)", wantErr: true}, // non-canonical numeral
		{in: "mix02(apsi@16+gafort@0)", wantErr: true}, // non-canonical count
		{in: "mix2(apsi@16+nosuch@0)", wantErr: true},  // unknown app
		{in: "mix2(apsi@-16+gafort@0)", wantErr: true}, // negative rotation
		{in: "mix2(apsi@16++gafort@0)", wantErr: true}, // empty entry
		{in: "mix2(APSI@16+gafort@0)", wantErr: true},  // app names are exact
		{in: "mix2(apsi@16+gafort@0) ", wantErr: true}, // trailing junk
	}
	for _, c := range cases {
		got, err := ParseMixSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMixSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMixSpec(%q): %v", c.in, err)
			continue
		}
		if c.want == "" {
			if got != nil {
				t.Errorf("ParseMixSpec(%q) = %+v, want nil", c.in, got)
			}
			continue
		}
		if got == nil || got.String() != c.want {
			t.Errorf("ParseMixSpec(%q).String() = %v, want %q", c.in, got, c.want)
		}
	}
}

func TestDefaultPhaseMixesValidate(t *testing.T) {
	mixes := DefaultPhaseMixes()
	if len(mixes) < 2 {
		t.Fatalf("want at least two phase mixes, got %d", len(mixes))
	}
	for _, mx := range mixes {
		if err := mx.Validate(); err != nil {
			t.Errorf("%s: %v", mx.String(), err)
		}
		// Every default mix must round-trip through its job-ID form.
		back, err := ParseMixSpec(mx.String())
		if err != nil || back.String() != mx.String() {
			t.Errorf("%s does not round-trip: %v, %v", mx.String(), back, err)
		}
		// At least one entry must actually rotate, or the mix is stationary
		// and does not belong in the phase-changing suite.
		rotates := false
		for _, e := range mx.Entries {
			if e.Rotate > 0 {
				rotates = true
			}
		}
		if !rotates {
			t.Errorf("%s never rotates", mx.String())
		}
	}
}

// FuzzParseMixSpec drives the parser with arbitrary input and pins the same
// contract FuzzParseMigrationSpec pins for migration specs: accepted input
// is valid, canonical, job-ID-safe, and a fixed point of parse→String→parse.
func FuzzParseMixSpec(f *testing.F) {
	f.Add("")
	f.Add("mix2(apsi@16+gafort@0)")
	f.Add("mix1(swim@0)")
	f.Add("mix2(apsi@+16+gafort@0)")
	f.Add("mix2(apsi@016+gafort@0)")
	f.Add("mix02(apsi@16+gafort@0)")
	f.Add("mix9999999999999999999(apsi@16)")
	f.Add("mix2(apsi@16+apsi@16)")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseMixSpec(s)
		if err != nil {
			if sp != nil {
				t.Fatalf("ParseMixSpec(%q) returned both a spec and an error", s)
			}
			return
		}
		if sp == nil {
			if s != "" {
				t.Fatalf("ParseMixSpec(%q) = nil, nil for non-empty input", s)
			}
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("ParseMixSpec(%q) accepted an invalid mix: %v", s, err)
		}
		canon := sp.String()
		if canon != s {
			t.Fatalf("ParseMixSpec(%q) accepted a non-canonical spelling of %q", s, canon)
		}
		back, err := ParseMixSpec(canon)
		if err != nil || back == nil || back.String() != canon {
			t.Fatalf("canonical %q does not round-trip: %+v, %v", canon, back, err)
		}
		if strings.ContainsAny(canon, ", =") {
			t.Fatalf("canonical form %q contains job-ID delimiter characters", canon)
		}
	})
}
