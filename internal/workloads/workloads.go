// Package workloads defines the 13 multithreaded applications of the
// paper's evaluation — the SPECOMP suite minus equake (wupwise, swim,
// mgrid, applu, galgel, apsi, gafort, fma3d, art, ammp) plus three Mantevo
// mini-apps (hpccg, minighost, minimd) — as affine kernels in the IR.
//
// The originals are Fortran/C programs we cannot run here; each kernel
// reproduces the structural properties the optimization cares about: the
// shape of its array references (row-parallel, transposed, multi-nest
// conflicting, indexed through CRS/neighbor lists), its inter-thread
// sharing, and its memory-level-parallelism demand. In particular fma3d
// and minighost carry the high bank-queue pressure that makes them prefer
// mapping M2 (Figures 17 and 18), and gafort/ammp have irregular index
// patterns that resist the Section 5.4 approximation while hpccg/minimd
// have banded ones that accept it.
package workloads

import (
	"fmt"
	"math/rand"

	"offchip/internal/ir"
	"offchip/internal/layout"
)

// App is one benchmark application.
type App struct {
	// Name is the paper's benchmark name.
	Name string
	// Source is the kernel in the affine-loop language.
	Source string
	// Demand feeds the L2-to-MC mapping chooser: concurrent off-chip
	// requests per cluster (Figure 18's bank pressure) in units the
	// chooser expects.
	Demand layout.DemandProfile
	// SharedFrac documents the fraction of data shared by 2+ threads
	// (Section 6.1 reports a 14% average, with fma3d and minighost
	// highest).
	SharedFrac float64
	// Notes describes what the kernel models.
	Notes string

	// fill populates index arrays (nil for purely affine apps).
	fill func(p *ir.Program, store *ir.DataStore)
}

// Load parses a fresh copy of the program and builds its profiled index
// arrays. Each call returns independent instances.
func (a *App) Load() (*ir.Program, *ir.DataStore, error) {
	p, err := ir.Parse(a.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
	}
	store := ir.NewDataStore()
	if a.fill != nil {
		a.fill(p, store)
	}
	if masterInitApps[a.Name] {
		addMasterInit(p)
	}
	return p, store, nil
}

// MustLoad is Load for static kernels; it panics on error.
func (a *App) MustLoad() (*ir.Program, *ir.DataStore) {
	p, s, err := a.Load()
	if err != nil {
		panic(err)
	}
	return p, s
}

func demand(concurrent float64) layout.DemandProfile {
	return layout.DemandProfile{ConcurrentRequests: concurrent, BankServiceHops: 10}
}

// All returns the 13 applications in the paper's listing order.
func All() []*App {
	return []*App{
		wupwise(), swim(), mgrid(), applu(), galgel(), apsi(), gafort(),
		fma3d(), art(), ammp(), hpccg(), minighost(), minimd(),
	}
}

// Names returns the application names in order.
func Names() []string {
	apps := All()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// ByName returns the named application.
func ByName(name string) (*App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

func wupwise() *App {
	return &App{
		Name:       "wupwise",
		Demand:     demand(3),
		SharedFrac: 0.12,
		Notes:      "lattice QCD: blocked dense update; the coefficient panel X is read per-column (transposed), exercising a second layout preference",
		Source: `
program wupwise
param N = 192
param K = 3
array U[192][192]
array X[192][192]
array R[192][192]

parfor i = 0 .. N {
  for k = 0 .. K {
    for j = 0 .. N {
      R[i][j] = R[i][j] + U[i][k] * X[k][i]
    }
  }
}
parfor i = 0 .. N {
  for j = 0 .. N {
    U[i][j] = R[i][j]
  }
}
`,
	}
}

func swim() *App {
	return &App{
		Name:       "swim",
		Demand:     demand(4),
		SharedFrac: 0.10,
		Notes:      "shallow water model: three coupled 2-D stencil sweeps over U, V, P",
		Source: `
program swim
param N = 192
array U[192][192]
array V[192][192]
array P[192][192]

parfor i = 0 .. N-1 {
  for j = 0 .. N-1 {
    U[i][j] = P[i][j] + P[i][j+1] + V[i][j]
  }
}
parfor i = 0 .. N-1 {
  for j = 0 .. N-1 {
    V[i][j] = P[i][j] + P[i+1][j] + U[i][j]
  }
}
parfor i = 0 .. N {
  for j = 0 .. N {
    P[i][j] = U[i][j] + V[i][j] + P[i][j]
  }
}
`,
	}
}

func mgrid() *App {
	return &App{
		Name:       "mgrid",
		Demand:     demand(4),
		SharedFrac: 0.12,
		Notes:      "multigrid V-cycle smoother: 3-D 7-point stencil",
		Source: `
program mgrid
param NI = 64
param NJ = 24
array Z[64][24][24]
array R[64][24][24]

parfor i = 1 .. NI-1 {
  for j = 1 .. NJ-1 {
    for k = 1 .. NJ-1 {
      R[i][j][k] = Z[i-1][j][k] + Z[i+1][j][k] + Z[i][j-1][k]
        + Z[i][j+1][k] + Z[i][j][k-1] + Z[i][j][k+1] + Z[i][j][k]
    }
  }
}
parfor i = 0 .. NI {
  for j = 0 .. NJ {
    for k = 0 .. NJ {
      Z[i][j][k] = R[i][j][k]
    }
  }
}
`,
	}
}

func applu() *App {
	return &App{
		Name:       "applu",
		Demand:     demand(3),
		SharedFrac: 0.15,
		Notes:      "SSOR solver: two sweeps with conflicting parallel dimensions (weighted selection resolves)",
		Source: `
program applu
param N = 192
array A[192][192]
array B[192][192]

parfor i = 1 .. N {
  for j = 1 .. N {
    A[i][j] = A[i-1][j] + A[i][j-1] + B[i][j] + B[i][j-1]
  }
}
parfor i = 0 .. N {
  for j = 0 .. N {
    A[i][j] = A[i][j] + B[j][i]
  }
}
`,
	}
}

func galgel() *App {
	return &App{
		Name:       "galgel",
		Demand:     demand(3),
		SharedFrac: 0.18,
		Notes:      "Galerkin FEM: dense matrix-vector products with one transposed operand sweep",
		Source: `
program galgel
param N = 192
array A[192][192]
array X[192]
array Y[192]
array W[192]

parfor i = 0 .. N {
  for j = 0 .. N {
    Y[i] = Y[i] + A[i][j] * X[j]
  }
}
parfor i = 0 .. N {
  for j = 0 .. N {
    W[i] = W[i] + A[j][i] + X[j]
  }
}
`,
	}
}

func apsi() *App {
	return &App{
		Name:       "apsi",
		Demand:     demand(3),
		SharedFrac: 0.11,
		Notes:      "pollutant transport: column-order stencil (the paper's Figure 9/13 example; wants the transposed layout)",
		Source: `
program apsi
param NCOL = 2088
param NROW = 24
array Z[24][2088]
array Q[24][2088]

parfor i = 2 .. NCOL-2 {
  for j = 1 .. NROW-1 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]
  }
}
parfor i = 0 .. NCOL {
  for j = 0 .. NROW {
    Q[j][i] = Z[j][i] + Q[j][i]
  }
}
`,
	}
}

func gafort() *App {
	return &App{
		Name:       "gafort",
		Demand:     demand(2),
		SharedFrac: 0.08,
		Notes:      "genetic algorithm: row-parallel population updates plus a random shuffle (unapproximable index array)",
		fill: func(p *ir.Program, store *ir.DataStore) {
			perm := p.Array("perm")
			rng := rand.New(rand.NewSource(42))
			vals := rng.Perm(int(perm.NumElems()))
			out := make([]int64, len(vals))
			for i, v := range vals {
				out[i] = int64(v)
			}
			store.SetContents(perm, out)
		},
		Source: `
program gafort
param POP = 2048
param GENES = 32
array pop[2048][32]
array fit[2048]
array perm[2048] elem 4

parfor i = 0 .. POP {
  for g = 0 .. GENES {
    pop[i][g] = pop[i][g] + pop[i][g]
  }
}
parfor i = 0 .. POP {
  for g = 0 .. GENES {
    fit[i] = fit[i] + pop[perm[i]][g]
  }
}
`,
	}
}

func fma3d() *App {
	return &App{
		Name:       "fma3d",
		Demand:     demand(24), // highest bank pressure (Figure 18): prefers M2
		SharedFrac: 0.38,
		Notes:      "crash simulation: element-node gather over an irregular mesh; highest sharing and MLP demand",
		fill: func(p *ir.Program, store *ir.DataStore) {
			conn := p.Array("conn")
			rng := rand.New(rand.NewSource(1973))
			vals := make([]int64, conn.NumElems())
			// Element e touches nodes around e/4 (banded connectivity) with
			// occasional long-range contacts — approximable but with real
			// error, and heavily shared at partition boundaries.
			elems := p.Array("elems").Dims[0]
			nodes := p.Array("nodes").Dims[0]
			for e := int64(0); e < elems; e++ {
				for v := int64(0); v < 4; v++ {
					base := e/4 + v
					if rng.Intn(8) == 0 {
						base += int64(rng.Intn(257) - 128)
					}
					if base < 0 {
						base = 0
					}
					if base >= nodes {
						base = nodes - 1
					}
					vals[4*e+v] = base
				}
			}
			store.SetContents(conn, vals)
		},
		Source: `
program fma3d
param ELEMS = 12288
param NODES = 4096
array nodes[4096][8]
array elems[12288][4]
array conn[49152] elem 4

parfor e = 0 .. ELEMS {
  for v = 0 .. 4 {
    elems[e][v] = elems[e][v] + nodes[conn[4*e+v]][0] + nodes[conn[4*e+v]][1]
  }
}
parfor e = 0 .. ELEMS {
  for v = 0 .. 4 {
    elems[e][v] = elems[e][v] + elems[e][v]
  }
}
`,
	}
}

func art() *App {
	return &App{
		Name:       "art",
		Demand:     demand(3),
		SharedFrac: 0.16,
		Notes:      "adaptive resonance neural net: forward pass and transposed weight update over the same matrix",
		Source: `
program art
param F1 = 192
param F2 = 192
array W[192][192]
array Y[192]
array T[192]

parfor i = 0 .. F2 {
  for j = 0 .. F1 {
    Y[i] = Y[i] + W[i][j]
  }
}
parfor i = 0 .. F2 {
  for j = 0 .. F1 {
    T[i] = T[i] + W[j][i]
  }
}
`,
	}
}

func ammp() *App {
	return &App{
		Name:       "ammp",
		Demand:     demand(3),
		SharedFrac: 0.14,
		Notes:      "molecular dynamics: global random neighbor lists that defeat the affine approximation",
		fill: func(p *ir.Program, store *ir.DataStore) {
			nb := p.Array("nb")
			rng := rand.New(rand.NewSource(607))
			atoms := int(p.Array("atoms").Dims[0])
			vals := make([]int64, nb.NumElems())
			for i := range vals {
				vals[i] = int64(rng.Intn(atoms)) // global scatter
			}
			store.SetContents(nb, vals)
		},
		Source: `
program ammp
param ATOMS = 4096
param NBRS = 8
array atoms[4096][4]
array f[4096][4]
array nb[32768] elem 4

parfor a = 0 .. ATOMS {
  for n = 0 .. NBRS {
    f[a][0] = f[a][0] + atoms[nb[8*a+n]][0]
  }
}
parfor a = 0 .. ATOMS {
  for d = 0 .. 4 {
    atoms[a][d] = atoms[a][d] + f[a][d]
  }
}
`,
	}
}

func hpccg() *App {
	return &App{
		Name:       "hpccg",
		Demand:     demand(4),
		SharedFrac: 0.09,
		Notes:      "conjugate gradient: CRS SpMV with a banded 27-point matrix (approximable, Section 5.4) plus vector updates",
		fill: func(p *ir.Program, store *ir.DataStore) {
			col := p.Array("colidx")
			rng := rand.New(rand.NewSource(271))
			vals := make([]int64, col.NumElems())
			rows := p.Array("x").Dims[0]
			// 27-point-style 3-D stencil columns on a 32x32 plane: the
			// nonzeros of row r sit at r plus these plane/line offsets.
			offsets := []int64{-1056, -1024, -33, -1, 0, 1, 32, 1024}
			for r := int64(0); r < rows; r++ {
				for nz := int64(0); nz < 8; nz++ {
					c := r + offsets[nz] + int64(rng.Intn(3)-1)
					if c < 0 {
						c = 0
					}
					if c >= rows {
						c = rows - 1
					}
					vals[8*r+nz] = c
				}
			}
			store.SetContents(col, vals)
		},
		Source: `
program hpccg
param ROWS = 12288
param NNZ = 8
array x[12288]
array Ax[12288]
array r[12288]
array colidx[98304] elem 4

parfor row = 0 .. ROWS {
  for nz = 0 .. NNZ {
    Ax[row] = Ax[row] + x[colidx[8*row+nz]]
  }
}
parfor row = 0 .. ROWS {
  r[row] = r[row] + x[row] + Ax[row]
}
`,
	}
}

func minighost() *App {
	return &App{
		Name:       "minighost",
		Demand:     demand(20), // second-highest bank pressure: prefers M2
		SharedFrac: 0.32,
		Notes:      "halo-exchange 27-point stencil: streaming 3-D sweeps with little reuse and heavy MC pressure",
		Source: `
program minighost
param NI = 64
param NJ = 24
array G[64][24][24]
array H[64][24][24]

parfor i = 1 .. NI-1 {
  for j = 1 .. NJ-1 {
    for k = 1 .. NJ-1 {
      H[i][j][k] = G[i-1][j][k] + G[i+1][j][k] + G[i][j-1][k]
        + G[i][j+1][k] + G[i][j][k-1] + G[i][j][k+1] + G[i][j][k]
        + G[i-1][j-1][k] + G[i+1][j+1][k]
    }
  }
}
parfor i = 0 .. NI {
  for j = 0 .. NJ {
    for k = 0 .. NJ {
      G[i][j][k] = H[i][j][k]
    }
  }
}
`,
	}
}

func minimd() *App {
	return &App{
		Name:       "minimd",
		Demand:     demand(3),
		SharedFrac: 0.10,
		Notes:      "MD force kernel: spatially sorted neighbor lists (tightly banded, approximable); first-touch-friendly",
		fill: func(p *ir.Program, store *ir.DataStore) {
			nb := p.Array("nb")
			rng := rand.New(rand.NewSource(1123))
			vals := make([]int64, nb.NumElems())
			atoms := p.Array("pos").Dims[0]
			for a := int64(0); a < atoms; a++ {
				for n := int64(0); n < 8; n++ {
					c := a + (n - 4) + int64(rng.Intn(3)-1)
					if c < 0 {
						c = 0
					}
					if c >= atoms {
						c = atoms - 1
					}
					vals[8*a+n] = c
				}
			}
			store.SetContents(nb, vals)
		},
		Source: `
program minimd
param ATOMS = 8192
param NBRS = 8
array pos[8192][4]
array force[8192][4]
array nb[65536] elem 4

parfor a = 0 .. ATOMS {
  for n = 0 .. NBRS {
    force[a][0] = force[a][0] + pos[nb[8*a+n]][0] + pos[nb[8*a+n]][1]
  }
}
parfor a = 0 .. ATOMS {
  for d = 0 .. 4 {
    pos[a][d] = pos[a][d] + force[a][d]
  }
}
`,
	}
}

// masterInitApps are the applications whose data is initialized by the
// master thread before the parallel phase — the reason the first-touch
// policy misplaces their pages (Section 6.3: its assumption holds only for
// wupwise, gafort, and minimd, which initialize in parallel).
var masterInitApps = map[string]bool{
	"swim": true, "mgrid": true, "applu": true, "galgel": true,
	"apsi": true, "fma3d": true, "art": true, "ammp": true,
	"hpccg": true, "minighost": true,
}

// touchStride spaces the master thread's initialization touches: one touch
// per OS page (4 KB of 8-byte elements).
const touchStride = 512

// addMasterInit prepends, per array, a single-threaded boot nest in which
// thread 0 touches one element of every page of the array (the classic
// serial-initialization pattern: calloc + master-thread init loop). The
// nests are tiny — a few touches per page — but under the first-touch
// policy they pull every page to the master thread's cluster controller.
func addMasterInit(p *ir.Program) {
	var boots []*ir.LoopNest
	for ai, arr := range p.Arrays {
		bootVar := fmt.Sprintf("boot%d", ai)
		nest := &ir.LoopNest{ParDepth: 0}
		nest.Loops = append(nest.Loops, ir.Loop{
			Var: bootVar, Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(1),
		})
		ref := &ir.Ref{Array: arr}
		switch arr.NumDims() {
		case 1:
			n := (arr.Dims[0] + touchStride - 1) / touchStride
			nest.Loops = append(nest.Loops, ir.Loop{Var: "tp", Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(n)})
			ref.Subs = []ir.LinExpr{ir.Term(touchStride, "tp", 0)}
		case 2:
			cols := (arr.Dims[1] + touchStride - 1) / touchStride
			nest.Loops = append(nest.Loops,
				ir.Loop{Var: "ti", Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(arr.Dims[0])},
				ir.Loop{Var: "tp", Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(cols)},
			)
			ref.Subs = []ir.LinExpr{ir.VarExpr("ti"), ir.Term(touchStride, "tp", 0)}
		default: // 3-D: each (i,j,·) row is well under a page here
			nest.Loops = append(nest.Loops,
				ir.Loop{Var: "ti", Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(arr.Dims[0])},
				ir.Loop{Var: "tj", Lower: ir.ConstExpr(0), Upper: ir.ConstExpr(arr.Dims[1])},
			)
			ref.Subs = []ir.LinExpr{ir.VarExpr("ti"), ir.VarExpr("tj"), ir.ConstExpr(0)}
		}
		nest.Body = []*ir.Statement{{Write: ref, Reads: []*ir.Ref{ref}}}
		boots = append(boots, nest)
	}
	p.Nests = append(boots, p.Nests...)
}
