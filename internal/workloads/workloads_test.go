package workloads

import (
	"testing"

	"offchip/internal/approx"
	"offchip/internal/layout"
)

func TestThirteenApps(t *testing.T) {
	apps := All()
	if len(apps) != 13 {
		t.Fatalf("%d applications, want 13 (SPECOMP minus equake + 3 Mantevo)", len(apps))
	}
	want := []string{"wupwise", "swim", "mgrid", "applu", "galgel", "apsi",
		"gafort", "fma3d", "art", "ammp", "hpccg", "minighost", "minimd"}
	for i, a := range apps {
		if a.Name != want[i] {
			t.Errorf("app %d = %s, want %s", i, a.Name, want[i])
		}
	}
}

func TestAllAppsLoadAndValidate(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, store, err := a.Load()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Name != a.Name {
				t.Errorf("program name %q", p.Name)
			}
			// Index arrays declared in the source must be filled.
			for _, arr := range p.Arrays {
				for _, nest := range p.Nests {
					for _, s := range nest.Body {
						for _, r := range s.Refs() {
							for _, is := range r.IndexSubs {
								if is.IndexArray == arr && store.Contents(arr) == nil {
									t.Errorf("index array %s has no profile contents", arr.Name)
								}
							}
						}
					}
				}
			}
			if a.Demand.ConcurrentRequests <= 0 {
				t.Error("no demand profile")
			}
		})
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("apsi")
	if !ok || a.Name != "apsi" {
		t.Fatal("ByName(apsi) failed")
	}
	if _, ok := ByName("equake"); ok {
		t.Error("equake should be absent (excluded in the paper)")
	}
	if len(Names()) != 13 {
		t.Error("Names() count")
	}
}

func TestLoadsAreIndependent(t *testing.T) {
	a, _ := ByName("apsi")
	p1, _, _ := a.Load()
	p2, _, _ := a.Load()
	if p1 == p2 || p1.Arrays[0] == p2.Arrays[0] {
		t.Error("Load returned shared instances")
	}
}

func TestDemandSeparatesM2Apps(t *testing.T) {
	// The mapping chooser must pick M2 exactly for fma3d and minighost
	// (Section 4 / Figure 17).
	m := layout.Default8x8()
	p := layout.PlacementCorners(8, 8)
	m1, err := layout.MappingM1(m, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := layout.MappingM2(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		got := layout.ChooseMapping([]*layout.ClusterMapping{m1, m2}, a.Demand, 4)
		wantM2 := a.Name == "fma3d" || a.Name == "minighost"
		if (got == m2) != wantM2 {
			t.Errorf("%s: chooser picked %s", a.Name, got.Name)
		}
	}
}

func TestOptimizationCharacter(t *testing.T) {
	// Every app must be at least partly optimizable, and the suite must
	// show the Table 2 spread: affine apps near 100%, irregular ones lower.
	m := layout.Default8x8()
	cm, err := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p, store := a.MustLoad()
			res, err := layout.Optimize(p, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
			if err != nil {
				t.Fatal(err)
			}
			if res.ArraysOptimized == 0 {
				t.Errorf("%s: no arrays optimized", a.Name)
			}
			sat := res.PctRefsSatisfied()
			if sat <= 0 || sat > 100 {
				t.Fatalf("%s: %f%% refs satisfied", a.Name, sat)
			}
			switch a.Name {
			case "swim", "mgrid", "apsi", "minighost":
				if sat < 95 {
					t.Errorf("%s: affine app only %.0f%% satisfied", a.Name, sat)
				}
			case "gafort", "ammp":
				if sat > 95 {
					t.Errorf("%s: irregular app %.0f%% satisfied (random indices should resist)", a.Name, sat)
				}
			}
		})
	}
}

func TestApproximableIndexArrays(t *testing.T) {
	// hpccg and minimd have banded index patterns that the Section 5.4
	// profiler must accept; ammp's global scatter must be rejected.
	m := layout.Default8x8()
	cm, _ := layout.MappingM1(m, layout.PlacementCorners(8, 8))
	satisfied := func(name string) float64 {
		a, _ := ByName(name)
		p, store := a.MustLoad()
		withApprox, err := layout.Optimize(p, m, cm, &layout.Options{Approx: approx.NewProfiler(store)})
		if err != nil {
			t.Fatal(err)
		}
		return withApprox.PctRefsSatisfied()
	}
	noApprox := func(name string) float64 {
		a, _ := ByName(name)
		p, _ := a.MustLoad()
		res, err := layout.Optimize(p, m, cm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.PctRefsSatisfied()
	}
	for _, name := range []string{"hpccg", "minimd"} {
		if satisfied(name) <= noApprox(name) {
			t.Errorf("%s: approximation did not improve satisfaction (%.0f%% vs %.0f%%)",
				name, satisfied(name), noApprox(name))
		}
	}
	if satisfied("ammp") > noApprox("ammp")+1 {
		t.Errorf("ammp: random scatter accepted by the approximator")
	}
}
